(* The certification server: wire-protocol robustness (round trips,
   malformed and truncated frames), the content-addressed proof store
   (exact hits, subsumption both ways, must-miss cases, restart
   recovery), and the daemon end to end — cache semantics over a real
   socket, worker crash + respawn, kill-mid-campaign resume, and
   concurrent clients checked against the sequential oracle. *)

let small_net seed dims =
  let rng = Linalg.Rng.create seed in
  Nn.Network.create ~rng dims

let mini_predictor seed =
  small_net seed [ 6; 8; 8; Nn.Gmm.output_dim ~components:2 ]

let fresh_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "depnn_serve_%s_%d_%d" prefix (Unix.getpid ()) !n)

let ibox dim radius = Array.make dim (Interval.make (-.radius) radius)

let interval_mode = Certify.Checker.mode_string Encoding.Encoder.Interval_bounds

let prop ?(threshold = 1.0) ?(radius = 0.3) ?(mode = interval_mode) () =
  {
    Certify.Certificate.threshold;
    components = 2;
    bound_mode = mode;
    box = Array.init 6 (fun _ -> (-.radius, radius));
  }

let query ?(exact_only = false) ?net_hash ?(time_limit = 30.0) p =
  {
    Serve.Protocol.property = p;
    net_hash;
    time_limit = Some time_limit;
    exact_only;
  }

let exact_max net b0 =
  Option.get
    (Verify.Driver.max_lateral_velocity ~components:2 net b0).Verify.Driver.value

(* {1 Protocol framing} *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_raw fd s =
  let b = Bytes.of_string s in
  ignore (Unix.write fd b 0 (Bytes.length b))

let test_frame_round_trip () =
  let payloads =
    [
      "x";
      "hello frame";
      String.concat "\n" [ "line"; "oriented"; "payload with \000 byte" ];
      String.make 100_000 'q';
    ]
  in
  List.iter
    (fun payload ->
      with_socketpair (fun a b ->
          Serve.Protocol.write_frame a payload;
          match Serve.Protocol.read_frame b with
          | Ok got -> Alcotest.(check string) "round trip" payload got
          | Error e -> Alcotest.fail e))
    payloads

let test_frame_oversized_write_rejected () =
  with_socketpair (fun a _ ->
      match
        Serve.Protocol.write_frame a
          (String.make (Serve.Protocol.max_frame + 1) 'x')
      with
      | () -> Alcotest.fail "oversized payload accepted"
      | exception Invalid_argument _ -> ())

let test_frame_malformed_rejected () =
  let reject name bytes =
    with_socketpair (fun a b ->
        write_raw a bytes;
        Unix.shutdown a Unix.SHUTDOWN_SEND;
        match Serve.Protocol.read_frame b with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail (name ^ " accepted"))
  in
  reject "bad magic" "nnped1 5 0000000000000000\nhello";
  reject "zero length" "depnn1 0 0000000000000000\n";
  reject "oversized length"
    (Printf.sprintf "depnn1 %d 0000000000000000\nhello"
       (Serve.Protocol.max_frame + 1));
  reject "non-numeric length" "depnn1 five 0000000000000000\nhello";
  reject "bad checksum" "depnn1 5 0000000000000000\nhello";
  reject "truncated payload"
    (Printf.sprintf "depnn1 50 %s\nshort" (Certify.Chash.of_string "short"));
  reject "immediate close" "";
  reject "endless header" (String.make 300 'h')

let test_frame_deadline_enforced () =
  (* Plumbing: an expired deadline rejects before reading; the frame is
     still in the buffer, so a live deadline then reads it fine. *)
  with_socketpair (fun a b ->
      Serve.Protocol.write_frame a "payload";
      (match
         Serve.Protocol.read_frame ~deadline:(Linalg.Mclock.now () -. 1.0) b
       with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "expired deadline accepted a frame");
      match
        Serve.Protocol.read_frame ~deadline:(Linalg.Mclock.now () +. 5.0) b
      with
      | Ok got -> Alcotest.(check string) "live deadline reads" "payload" got
      | Error e -> Alcotest.fail e);
  (* A slow-loris peer dribbling one byte per read is cut off at the
     deadline — each byte resets a per-read socket timeout but not the
     per-connection clock. *)
  with_socketpair (fun a b ->
      let writer =
        Domain.spawn (fun () ->
            try
              for _ = 1 to 10 do
                write_raw a "h";
                Unix.sleepf 0.05
              done
            with Unix.Unix_error _ -> ())
      in
      let started = Linalg.Mclock.now () in
      (match
         Serve.Protocol.read_frame ~deadline:(started +. 0.15) b
       with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "dribbled bytes parsed as a frame");
      Alcotest.(check bool) "cut off near the deadline" true
        (Linalg.Mclock.now () -. started < 0.45);
      Domain.join writer)

let test_client_bad_host_errors () =
  match
    Serve.Client.call ~timeout:1.0
      (Serve.Protocol.Tcp ("no-such-host.depnn.invalid", 1))
      Serve.Protocol.Status
  with
  | Error reason ->
      Alcotest.(check bool) "resolution failure is explicit" true
        (String.length reason > 0)
  | Ok _ -> Alcotest.fail "typo'd host reached a server"

(* {1 Protocol grammar} *)

let request_eq (a : Serve.Protocol.request) (b : Serve.Protocol.request) =
  a = b

let response_eq (a : Serve.Protocol.response) (b : Serve.Protocol.response) =
  a = b

let test_request_round_trip () =
  let cases =
    [
      Serve.Protocol.Status;
      Serve.Protocol.Shutdown;
      Serve.Protocol.Predict [| 0.0; -1.5; 0x1.23456789abcdp-7; 1e300 |];
      Serve.Protocol.Verify (query (prop ()));
      Serve.Protocol.Verify
        (query ~exact_only:true ~net_hash:"00aa11bb22cc33dd"
           (prop ~threshold:(-2.75) ~radius:0.125 ~mode:"symbolic" ()));
      Serve.Protocol.Verify
        {
          Serve.Protocol.property = prop ();
          net_hash = None;
          time_limit = None;
          exact_only = false;
        };
    ]
  in
  List.iter
    (fun r ->
      match Serve.Protocol.parse_request (Serve.Protocol.render_request r) with
      | Ok got ->
          Alcotest.(check bool) "request round trip" true (request_eq r got)
      | Error e -> Alcotest.fail e)
    cases

let test_response_round_trip () =
  let answer verdict cache =
    Serve.Protocol.Answer
      {
        Serve.Protocol.verdict;
        cache;
        certified = 2;
        prop_hash = "8e56a7733f340ba2";
        cert_dir = "/tmp/cache dir with spaces/8e56a7733f340ba2";
        solve_s = 0.03125;
      }
  in
  let cases =
    [
      answer Serve.Protocol.V_proved Serve.Protocol.Cache_miss;
      answer
        (Serve.Protocol.V_disproved
           { witness = [| 0.1; -0.2; 0.0; 1.0; -1.0; 0.25 |]; achieved = 1.75 })
        Serve.Protocol.Cache_subsumed;
      answer
        (Serve.Protocol.V_unknown { best_bound = 3.5 })
        Serve.Protocol.Cache_exact;
      Serve.Protocol.Outputs [| 1.0; 2.0; -3.0 |];
      Serve.Protocol.Stats
        {
          Serve.Protocol.uptime_s = 12.5;
          workers = 2;
          failed_workers = 1;
          queue_depth = 3;
          queue_capacity = 64;
          queries = 10;
          served_exact = 4;
          served_subsumed = 2;
          solved = 3;
          rejected = 1;
          store_entries = 5;
        };
      Serve.Protocol.Shutting_down;
      Serve.Protocol.Refused "server saturated (queue full)";
    ]
  in
  List.iter
    (fun r ->
      match Serve.Protocol.parse_response (Serve.Protocol.render_response r) with
      | Ok got ->
          Alcotest.(check bool) "response round trip" true (response_eq r got)
      | Error e -> Alcotest.fail e)
    cases

let test_garbage_requests_rejected () =
  let reject name payload =
    match Serve.Protocol.parse_request payload with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (name ^ " accepted")
  in
  reject "empty" "";
  reject "unknown op" "launch\n";
  reject "verify without body" "verify\n";
  reject "non-hex threshold"
    "verify\nnet -\nthreshold elephant\ncomponents 2\nbound-mode \
     interval\ntime-limit -\nbox 1\n0x0p+0 0x1p+0\n";
  reject "box count mismatch"
    "verify\nnet -\nthreshold 0x1p+0\ncomponents 2\nbound-mode \
     interval\ntime-limit -\nbox 3\n0x0p+0 0x1p+0\n";
  reject "absurd dimension"
    "verify\nnet -\nthreshold 0x1p+0\ncomponents 2\nbound-mode \
     interval\ntime-limit -\nbox 200000\n";
  reject "predict without count" "predict\n0x0p+0\n"

(* {1 Proof store} *)

let prove_into_store store session ~net_hash ~threshold p =
  let prop_hash = Certify.Certificate.property_hash ~net_hash p in
  let dir = Certify.Store.entry_dir store ~prop_hash in
  let r =
    Verify.Driver.prove_in_session session ~time_limit:60.0
      ~certify_dir:dir ~components:2 ~threshold
      (Array.map (fun (lo, hi) -> Interval.make lo hi)
         p.Certify.Certificate.box)
  in
  (r, Certify.Store.record store ~net_hash p)

let test_store_exact_subsumed_miss () =
  let net = mini_predictor 81 in
  let net_hash = Nn.Io.content_hash net in
  let v = exact_max net (ibox 6 0.3) in
  let store = Certify.Store.open_ ~dir:(fresh_dir "store") in
  let session = Verify.Driver.create_session net in
  let p = prop ~threshold:(v +. 0.5) () in
  let r, entry = prove_into_store store session ~net_hash ~threshold:(v +. 0.5) p in
  Alcotest.(check bool) "proved" true (r.Verify.Driver.proof = Verify.Driver.Proved);
  Alcotest.(check bool) "recorded" true (entry <> None);
  Alcotest.(check int) "one entry" 1 (Certify.Store.size store);
  (* Exact hit. *)
  (match Certify.Store.lookup store ~net_hash p with
   | Some { exact = true; entry } ->
       Alcotest.(check bool) "proved entry" true
         (entry.Certify.Store.verdict = Certify.Store.Proved)
   | _ -> Alcotest.fail "expected exact hit");
  (* Subsumed: contained box, no-tighter threshold. *)
  (match
     Certify.Store.lookup store ~net_hash
       (prop ~threshold:(v +. 1.0) ~radius:0.2 ())
   with
   | Some { exact = false; _ } -> ()
   | _ -> Alcotest.fail "expected subsumed hit");
  (* Must miss: tighter threshold than anything proved. *)
  Alcotest.(check bool) "tighter threshold misses" true
    (Certify.Store.lookup store ~net_hash
       (prop ~threshold:(v +. 0.1) ~radius:0.2 ())
     = None);
  (* Must miss: larger box than anything proved. *)
  Alcotest.(check bool) "larger box misses" true
    (Certify.Store.lookup store ~net_hash
       (prop ~threshold:(v +. 1.0) ~radius:0.4 ())
     = None);
  (* Must miss: same question under a different bound mode. *)
  Alcotest.(check bool) "different bound mode misses" true
    (Certify.Store.lookup store ~net_hash
       (prop ~threshold:(v +. 0.5) ~mode:"symbolic" ())
     = None);
  (* Must miss: perturbed weights change the network hash. *)
  let mutated =
    Fault.Model.inject
      (Fault.Model.Weight_bit_flip { layer = 1; row = 2; col = 3; bit = 0 })
      net
  in
  Alcotest.(check bool) "perturbed network misses" true
    (Certify.Store.lookup store ~net_hash:(Nn.Io.content_hash mutated) p
     = None);
  (* exact_only suppresses the subsumption fallback. *)
  Alcotest.(check bool) "exact_only misses on subsumable" true
    (Certify.Store.lookup ~exact_only:true store ~net_hash
       (prop ~threshold:(v +. 1.0) ~radius:0.2 ())
     = None);
  (* A reopened store recovers the entry from disk alone. *)
  let store2 = Certify.Store.open_ ~dir:(Certify.Store.root store) in
  Alcotest.(check int) "recovered after reopen" 1 (Certify.Store.size store2);
  match Certify.Store.lookup store2 ~net_hash p with
  | Some { exact = true; entry } ->
      let rep = Certify.Audit.run ~net ~dir:entry.Certify.Store.dir in
      Alcotest.(check bool) "recovered entry audits" true
        (rep.Certify.Audit.ok && rep.Certify.Audit.verdict = `Proved)
  | _ -> Alcotest.fail "expected exact hit after reopen"

let test_store_disproof_subsumption () =
  let net = mini_predictor 82 in
  let net_hash = Nn.Io.content_hash net in
  let v = exact_max net (ibox 6 0.3) in
  let store = Certify.Store.open_ ~dir:(fresh_dir "store_dis") in
  let session = Verify.Driver.create_session net in
  let p = prop ~threshold:(v -. 0.2) () in
  let r, entry = prove_into_store store session ~net_hash ~threshold:(v -. 0.2) p in
  let achieved =
    match r.Verify.Driver.proof with
    | Verify.Driver.Disproved w -> w.Verify.Driver.achieved
    | _ -> Alcotest.fail "expected a falsification"
  in
  Alcotest.(check bool) "recorded" true (entry <> None);
  (* The witness refutes any containing box at any beatable threshold. *)
  (match
     Certify.Store.lookup store ~net_hash
       (prop ~threshold:(v -. 0.3) ~radius:0.4 ())
   with
   | Some { exact = false; entry } ->
       Alcotest.(check bool) "disproved entry" true
         (match entry.Certify.Store.verdict with
          | Certify.Store.Disproved _ -> true
          | _ -> false)
   | _ -> Alcotest.fail "expected subsumed disproof");
  (* Must miss: threshold the witness does not beat. *)
  Alcotest.(check bool) "unbeatable threshold misses" true
    (Certify.Store.lookup store ~net_hash
       (prop ~threshold:(achieved +. 0.1) ~radius:0.4 ())
     = None)

let test_store_never_caches_unknown () =
  let net = mini_predictor 83 in
  let net_hash = Nn.Io.content_hash net in
  let store = Certify.Store.open_ ~dir:(fresh_dir "store_unk") in
  let session = Verify.Driver.create_session net in
  let p = prop ~threshold:0.0 () in
  let prop_hash = Certify.Certificate.property_hash ~net_hash p in
  (* A hopeless budget forces the watchdog's honest Unknown. *)
  let r =
    Verify.Driver.prove_in_session session ~time_limit:1e-9
      ~certify_dir:(Certify.Store.entry_dir store ~prop_hash) ~components:2
      ~threshold:0.0
      (Array.map (fun (lo, hi) -> Interval.make lo hi)
         p.Certify.Certificate.box)
  in
  (match r.Verify.Driver.proof with
   | Verify.Driver.Unknown _ -> ()
   | _ -> Alcotest.fail "expected Unknown under a hopeless budget");
  Alcotest.(check bool) "unknown not recorded" true
    (Certify.Store.record store ~net_hash p = None);
  Alcotest.(check int) "store stays empty" 0 (Certify.Store.size store)

(* {1 The daemon end to end} *)

let with_server ?(workers = 2) ?worker_hook ?root net f =
  let dir = match root with Some d -> d | None -> fresh_dir "daemon" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let sock = Filename.concat dir "sock" in
  let address = Serve.Protocol.Unix_socket sock in
  let config =
    {
      (Serve.Server.default_config ~address ~cache_dir:(Filename.concat dir "cache") ()) with
      Serve.Server.workers;
      stats_interval = 0.0;
      log = ignore;
    }
  in
  let d =
    Domain.spawn (fun () -> Serve.Server.run ?worker_hook config net)
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Serve.Client.call address Serve.Protocol.Shutdown);
      Domain.join d)
    (fun () ->
      match Serve.Client.wait_ready address with
      | Ok _ -> f address
      | Error e -> Alcotest.fail e)

let call_ok address request =
  match Serve.Client.call address request with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let verify_answer address ?exact_only ?net_hash p =
  match call_ok address (Serve.Protocol.Verify (query ?exact_only ?net_hash p)) with
  | Serve.Protocol.Answer a -> a
  | Serve.Protocol.Refused r -> Alcotest.fail ("refused: " ^ r)
  | _ -> Alcotest.fail "unexpected response"

let check_cache what expected (a : Serve.Protocol.answer) =
  Alcotest.(check string) what
    (Serve.Protocol.cache_string expected)
    (Serve.Protocol.cache_string a.Serve.Protocol.cache)

let test_server_cache_flow () =
  let net = mini_predictor 90 in
  let v = exact_max net (ibox 6 0.3) in
  with_server net (fun address ->
      let p = prop ~threshold:(v +. 0.5) () in
      (* Cold: solved, certified, auditable. *)
      let a1 = verify_answer address p in
      check_cache "first query misses" Serve.Protocol.Cache_miss a1;
      Alcotest.(check bool) "proved" true
        (a1.Serve.Protocol.verdict = Serve.Protocol.V_proved);
      Alcotest.(check bool) "certified" true (a1.Serve.Protocol.certified > 0);
      let rep = Certify.Audit.run ~net ~dir:a1.Serve.Protocol.cert_dir in
      Alcotest.(check bool) "cache-backing certificates audit" true
        (rep.Certify.Audit.ok && rep.Certify.Audit.verdict = `Proved);
      (* Warm: exact hit, same verdict, same backing directory. *)
      let a2 = verify_answer address p in
      check_cache "repeat hits exactly" Serve.Protocol.Cache_exact a2;
      Alcotest.(check string) "same backing dir" a1.Serve.Protocol.cert_dir
        a2.Serve.Protocol.cert_dir;
      (* Contained box at a looser threshold: subsumed. *)
      let a3 = verify_answer address (prop ~threshold:(v +. 1.0) ~radius:0.2 ()) in
      check_cache "contained box subsumed" Serve.Protocol.Cache_subsumed a3;
      Alcotest.(check bool) "subsumed verdict proved" true
        (a3.Serve.Protocol.verdict = Serve.Protocol.V_proved);
      (* certify op: exact key only, so the same question misses. *)
      let a4 =
        verify_answer address ~exact_only:true
          (prop ~threshold:(v +. 1.0) ~radius:0.2 ())
      in
      check_cache "exact-only re-proves" Serve.Protocol.Cache_miss a4;
      Alcotest.(check bool) "distinct certificates" true
        (a4.Serve.Protocol.cert_dir <> a1.Serve.Protocol.cert_dir);
      (* Pinned hash mismatch is refused. *)
      (match
         Serve.Client.call address
           (Serve.Protocol.Verify (query ~net_hash:"deadbeefdeadbeef" p))
       with
       | Ok (Serve.Protocol.Refused _) -> ()
       | _ -> Alcotest.fail "hash mismatch not refused");
      (* A non-finite or negative budget is refused before it can poison
         the solver's deadline (NaN survives [Float.min] with the cap
         and would disarm the timeout check forever). *)
      List.iter
        (fun time_limit ->
          match
            Serve.Client.call address
              (Serve.Protocol.Verify (query ~time_limit p))
          with
          | Ok (Serve.Protocol.Refused _) -> ()
          | _ -> Alcotest.fail "bad time limit not refused")
        [ Float.nan; Float.infinity; Float.neg_infinity; -1.0 ];
      (* predict matches the in-process forward pass. *)
      let x = Array.init 6 (fun i -> 0.01 *. float_of_int i) in
      (match call_ok address (Serve.Protocol.Predict x) with
       | Serve.Protocol.Outputs out ->
           Alcotest.(check (array (float 0.0))) "forward pass served"
             (Nn.Network.forward net x) out
       | _ -> Alcotest.fail "expected outputs");
      (match Serve.Client.call address (Serve.Protocol.Predict [| 1.0 |]) with
       | Ok (Serve.Protocol.Refused _) -> ()
       | _ -> Alcotest.fail "wrong predict dim not refused");
      (* A garbage frame gets a clean error and the server lives on. *)
      let sock =
        match address with Serve.Protocol.Unix_socket s -> s | _ -> assert false
      in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let garbage = Bytes.of_string "not a frame at all\n" in
      ignore (Unix.write fd garbage 0 (Bytes.length garbage));
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      (match Serve.Protocol.read_frame fd with
       | Ok payload -> (
           match Serve.Protocol.parse_response payload with
           | Ok (Serve.Protocol.Refused _) -> ()
           | _ -> Alcotest.fail "garbage not refused")
       | Error e -> Alcotest.fail ("no error frame for garbage: " ^ e));
      Unix.close fd;
      match call_ok address Serve.Protocol.Status with
      | Serve.Protocol.Stats s ->
          Alcotest.(check int) "exact hits counted" 1
            s.Serve.Protocol.served_exact;
          Alcotest.(check int) "subsumed hits counted" 1
            s.Serve.Protocol.served_subsumed;
          Alcotest.(check int) "solves counted" 2 s.Serve.Protocol.solved;
          Alcotest.(check int) "settled questions cached" 2
            s.Serve.Protocol.store_entries;
          Alcotest.(check bool) "garbage counted as rejected" true
            (s.Serve.Protocol.rejected >= 1)
      | _ -> Alcotest.fail "expected stats")

let test_server_worker_crash_respawn () =
  let net = mini_predictor 91 in
  let v = exact_max net (ibox 6 0.3) in
  let crashes = Atomic.make 1 in
  let hook _ = if Atomic.fetch_and_add crashes (-1) > 0 then failwith "boom" in
  with_server ~workers:1 ~worker_hook:hook net (fun address ->
      let p = prop ~threshold:(v +. 0.5) () in
      (* The poisoned job kills the worker — after the client got a
         clean protocol error, not a hang. *)
      (match Serve.Client.call address (Serve.Protocol.Verify (query p)) with
       | Ok (Serve.Protocol.Refused reason) ->
           Alcotest.(check bool) "internal error reported" true
             (String.length reason > 0)
       | _ -> Alcotest.fail "expected a refusal from the crashed worker");
      (* The accept loop respawns the worker; the same question then
         solves normally. *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec await_respawn () =
        match call_ok address Serve.Protocol.Status with
        | Serve.Protocol.Stats s
          when s.Serve.Protocol.failed_workers >= 1 ->
            ()
        | _ when Unix.gettimeofday () > deadline ->
            Alcotest.fail "worker death never surfaced in stats"
        | _ ->
            Unix.sleepf 0.05;
            await_respawn ()
      in
      await_respawn ();
      let a = verify_answer address p in
      check_cache "respawned worker solves" Serve.Protocol.Cache_miss a;
      Alcotest.(check bool) "proved after respawn" true
        (a.Serve.Protocol.verdict = Serve.Protocol.V_proved))

let journal_first_line dir =
  let path = Filename.concat dir "journal.log" in
  let ic = open_in_bin path in
  let line = input_line ic in
  close_in ic;
  line

let test_server_kill_restart_recover () =
  let net = mini_predictor 92 in
  let v = exact_max net (ibox 6 0.3) in
  let root = fresh_dir "restart" in
  let p = prop ~threshold:(v +. 0.5) () in
  let dir = ref "" in
  with_server ~root net (fun address ->
      let a = verify_answer address p in
      check_cache "cold miss" Serve.Protocol.Cache_miss a;
      dir := a.Serve.Protocol.cert_dir);
  (* Simulate a kill after the first component was journaled: drop all
     but the first journal line, exactly as an interrupted campaign
     would leave the directory. *)
  let first = journal_first_line !dir in
  let oc = open_out_bin (Filename.concat !dir "journal.log") in
  output_string oc (first ^ "\n");
  close_out oc;
  with_server ~root net (fun address ->
      (* The torn directory no longer settles the question... *)
      (match call_ok address Serve.Protocol.Status with
       | Serve.Protocol.Stats s ->
           Alcotest.(check int) "torn entry not recovered" 0
             s.Serve.Protocol.store_entries
       | _ -> Alcotest.fail "expected stats");
      (* ...so the query misses, resumes the journal, and re-settles. *)
      let a = verify_answer address p in
      check_cache "re-proved after the kill" Serve.Protocol.Cache_miss a;
      Alcotest.(check bool) "proved" true
        (a.Serve.Protocol.verdict = Serve.Protocol.V_proved);
      let a2 = verify_answer address p in
      check_cache "cached again" Serve.Protocol.Cache_exact a2;
      let rep = Certify.Audit.run ~net ~dir:a2.Serve.Protocol.cert_dir in
      Alcotest.(check bool) "recovered certificates audit" true
        (rep.Certify.Audit.ok && rep.Certify.Audit.verdict = `Proved))

let test_server_duplicate_misses_solve_once () =
  let net = mini_predictor 94 in
  let v = exact_max net (ibox 6 0.3) in
  (* Slow the workers so both clients' identical query is in the pool
     simultaneously: without the in-flight registry the two workers
     would solve concurrently into the same certificate directory. *)
  let hook _ = Unix.sleepf 0.2 in
  with_server ~workers:2 ~worker_hook:hook net (fun address ->
      let p = prop ~threshold:(v +. 0.5) () in
      let answers =
        Array.map Domain.join
          (Array.init 2 (fun _ ->
               Domain.spawn (fun () -> verify_answer address p)))
      in
      Array.iter
        (fun a ->
          Alcotest.(check bool) "both clients get the proof" true
            (a.Serve.Protocol.verdict = Serve.Protocol.V_proved))
        answers;
      (match call_ok address Serve.Protocol.Status with
       | Serve.Protocol.Stats s ->
           Alcotest.(check int) "solved exactly once" 1 s.Serve.Protocol.solved;
           Alcotest.(check int) "one cache entry" 1
             s.Serve.Protocol.store_entries
       | _ -> Alcotest.fail "expected stats");
      let a = verify_answer address p in
      let rep = Certify.Audit.run ~net ~dir:a.Serve.Protocol.cert_dir in
      Alcotest.(check bool) "shared directory audits clean" true
        (rep.Certify.Audit.ok && rep.Certify.Audit.verdict = `Proved))

(* Concurrent clients: any interleaving of queries must produce exactly
   the verdicts the sequential driver produces — the cache and the
   worker pool may change latency, never answers. *)
let prop_concurrent_matches_sequential =
  QCheck.Test.make ~count:3 ~name:"concurrent clients match sequential oracle"
    QCheck.(make Gen.(int_range 0 10_000))
    (fun case_seed ->
      let net = mini_predictor 93 in
      let v = exact_max net (ibox 6 0.3) in
      let rng = Linalg.Rng.create case_seed in
      let thresholds =
        Array.init 4 (fun _ ->
            let sign = if Linalg.Rng.bool rng then 1.0 else -1.0 in
            v +. (sign *. Linalg.Rng.uniform rng 0.05 0.5))
      in
      (* One duplicate exercises the dogpile path: two clients racing
         on the same key. *)
      thresholds.(3) <- thresholds.(0);
      let oracle =
        let session = Verify.Driver.create_session net in
        Array.map
          (fun threshold ->
            (Verify.Driver.prove_in_session session ~time_limit:60.0
               ~components:2 ~threshold (ibox 6 0.3))
              .Verify.Driver.proof)
          thresholds
      in
      let answers = Array.make (Array.length thresholds) None in
      with_server net (fun address ->
          Array.iteri
            (fun i d -> answers.(i) <- Some (Domain.join d))
            (Array.map
               (fun threshold ->
                 Domain.spawn (fun () ->
                     verify_answer address (prop ~threshold ())))
               thresholds));
      Array.for_all2
        (fun answer expected ->
          match (answer, expected) with
          | Some a, Verify.Driver.Proved ->
              a.Serve.Protocol.verdict = Serve.Protocol.V_proved
          | Some a, Verify.Driver.Disproved _ -> (
              match a.Serve.Protocol.verdict with
              | Serve.Protocol.V_disproved _ -> true
              | _ -> false)
          | Some a, Verify.Driver.Unknown _ -> (
              match a.Serve.Protocol.verdict with
              | Serve.Protocol.V_unknown _ -> true
              | _ -> false)
          | None, _ -> false)
        answers oracle)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          quick "frame round trip" test_frame_round_trip;
          quick "oversized write rejected" test_frame_oversized_write_rejected;
          quick "malformed frames rejected" test_frame_malformed_rejected;
          quick "read deadline enforced" test_frame_deadline_enforced;
          quick "bad host errors" test_client_bad_host_errors;
          quick "request round trip" test_request_round_trip;
          quick "response round trip" test_response_round_trip;
          quick "garbage requests rejected" test_garbage_requests_rejected;
        ] );
      ( "store",
        [
          slow "exact + subsumed + must-miss" test_store_exact_subsumed_miss;
          slow "disproof subsumption" test_store_disproof_subsumption;
          slow "unknown never cached" test_store_never_caches_unknown;
        ] );
      ( "daemon",
        [
          slow "cache flow over the socket" test_server_cache_flow;
          slow "duplicate misses solve once" test_server_duplicate_misses_solve_once;
          slow "worker crash + respawn" test_server_worker_crash_respawn;
          slow "kill + restart + recover" test_server_kill_restart_recover;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_concurrent_matches_sequential ] );
    ]

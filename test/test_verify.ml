let small_net seed dims =
  let rng = Linalg.Rng.create seed in
  Nn.Network.create ~rng dims

let box dim radius = Array.make dim (Interval.make (-.radius) radius)

(* A miniature "predictor": 6 inputs, 2 hidden layers, GMM head with 2
   components (10 outputs). Fast enough to verify exactly in tests. *)
let mini_predictor seed =
  small_net seed [ 6; 8; 8; Nn.Gmm.output_dim ~components:2 ]

(* {1 Property} *)

let test_property_output_indices () =
  Alcotest.(check (list int)) "maximize" [ 3 ]
    (Verify.Property.output_indices ~components:2 (Verify.Property.Maximize_output 3));
  Alcotest.(check (list int)) "lat velocity components" [ 2; 3 ]
    (Verify.Property.output_indices ~components:2
       (Verify.Property.Max_lateral_velocity { components = 2 }));
  let p =
    Verify.Property.make ~name:"test" ~box:(box 3 1.0)
      (Verify.Property.Output_le { output = 0; threshold = 1.0 })
  in
  Alcotest.(check string) "name kept" "test" p.Verify.Property.name

let test_property_pp () =
  let s =
    Format.asprintf "%a" Verify.Property.pp_query
      (Verify.Property.Lateral_velocity_le { components = 3; threshold = 3.0 })
  in
  Alcotest.(check bool) "mentions threshold" true
    (String.length s > 0)

(* {1 Scenario} *)

let test_scenario_vehicle_on_left_pins_presence () =
  let sbox = Verify.Scenario.vehicle_on_left () in
  Alcotest.(check int) "dimension" 84 (Array.length sbox);
  let left = Highway.Features.orientation_base Highway.Orientation.Left in
  let presence = sbox.(left + Highway.Features.presence_offset) in
  Alcotest.(check (float 0.0)) "presence pinned to 1" 1.0 presence.Interval.lo;
  Alcotest.(check (float 0.0)) "presence pinned to 1 (hi)" 1.0 presence.Interval.hi;
  (* Not in the leftmost lane. *)
  let leftmost = sbox.(Highway.Features.road_is_leftmost) in
  Alcotest.(check (float 0.0)) "not leftmost" 0.0 leftmost.Interval.hi

let test_scenario_inside_domain () =
  List.iter
    (fun sbox ->
      Array.iteri
        (fun i iv ->
          Alcotest.(check bool)
            (Printf.sprintf "feature %d inside domain" i)
            true
            (Interval.subset iv Highway.Features.domain.(i)))
        sbox)
    [ Verify.Scenario.vehicle_on_left (); Verify.Scenario.free_left () ]

let test_scenario_free_left_empty () =
  let sbox = Verify.Scenario.free_left () in
  let left = Highway.Features.orientation_base Highway.Orientation.Left in
  let presence = sbox.(left + Highway.Features.presence_offset) in
  Alcotest.(check (float 0.0)) "presence pinned to 0" 0.0 presence.Interval.hi

let test_scenario_slack_monotone () =
  let narrow = Verify.Scenario.vehicle_on_left ~slack:0.01 () in
  let wide = Verify.Scenario.vehicle_on_left ~slack:0.2 () in
  let total_width b =
    Array.fold_left (fun acc iv -> acc +. Interval.width iv) 0.0 b
  in
  Alcotest.(check bool) "wider slack, wider box" true
    (total_width wide > total_width narrow)

let test_scenario_concretize () =
  let sbox = Verify.Scenario.vehicle_on_left () in
  let point = Interval.Box.center sbox in
  let described = Verify.Scenario.concretize sbox point in
  Alcotest.(check bool) "describes pinned features" true
    (List.length described > 0);
  Alcotest.(check bool) "includes left presence" true
    (List.mem_assoc "left.present" described)

(* {1 Driver} *)

let test_maximize_output_optimal_and_sound () =
  let net = small_net 31 [ 4; 6; 6; 3 ] in
  let b0 = box 4 0.5 in
  let r = Verify.Driver.maximize_output ~output:2 net b0 in
  Alcotest.(check bool) "optimal" true r.Verify.Driver.optimal;
  match r.Verify.Driver.value with
  | None -> Alcotest.fail "expected a value"
  | Some v ->
      Alcotest.(check (float 1e-5)) "value = upper bound" v
        r.Verify.Driver.upper_bound;
      let rng = Linalg.Rng.create 32 in
      let sampled, _ =
        Verify.Driver.sampled_max_lateral_velocity ~rng ~samples:1 ~components:1
          net b0
      in
      ignore sampled;
      for _ = 1 to 5000 do
        let x = Interval.Box.sample b0 rng in
        let o = Nn.Network.forward net x in
        if o.(2) > v +. 1e-5 then Alcotest.fail "sampling beat the verifier"
      done

let test_witness_replays () =
  let net = small_net 33 [ 4; 6; 6; 3 ] in
  let b0 = box 4 0.5 in
  let r = Verify.Driver.maximize_output ~output:0 net b0 in
  match r.Verify.Driver.witness with
  | None -> Alcotest.fail "expected witness"
  | Some w ->
      Alcotest.(check bool) "witness in box" true
        (Interval.Box.contains b0 w.Verify.Driver.input);
      let out = Nn.Network.forward net w.Verify.Driver.input in
      Alcotest.(check (float 1e-6)) "outputs replay" out.(0)
        w.Verify.Driver.achieved;
      (match r.Verify.Driver.value with
       | Some v ->
           Alcotest.(check (float 1e-4)) "achieved matches milp" v
             w.Verify.Driver.achieved
       | None -> Alcotest.fail "value missing")

let test_max_lateral_velocity_components () =
  let net = mini_predictor 34 in
  let b0 = box 6 0.4 in
  let r = Verify.Driver.max_lateral_velocity ~components:2 net b0 in
  Alcotest.(check bool) "optimal" true r.Verify.Driver.optimal;
  match r.Verify.Driver.value with
  | None -> Alcotest.fail "expected value"
  | Some v ->
      (* Exhaustive sampling of the mixture component means must stay
         below the verified maximum. *)
      let rng = Linalg.Rng.create 35 in
      let sampled, _ =
        Verify.Driver.sampled_max_lateral_velocity ~rng ~samples:5000
          ~components:2 net b0
      in
      Alcotest.(check bool) "sampled <= verified" true (sampled <= v +. 1e-5);
      Alcotest.(check bool) "verified is reachable-ish" true
        (sampled >= v -. 1.0)

let test_sampled_max_bounded_by_upper () =
  let net = mini_predictor 36 in
  let b0 = box 6 0.3 in
  let r = Verify.Driver.max_lateral_velocity ~components:2 net b0 in
  let rng = Linalg.Rng.create 37 in
  let sampled, input =
    Verify.Driver.sampled_max_lateral_velocity ~rng ~samples:2000 ~components:2
      net b0
  in
  Alcotest.(check bool) "within bound" true
    (sampled <= r.Verify.Driver.upper_bound +. 1e-5);
  Alcotest.(check bool) "witness input in box" true
    (Interval.Box.contains b0 input)

let test_prove_trivial_threshold () =
  let net = mini_predictor 38 in
  let b0 = box 6 0.3 in
  (* First compute the exact max, then ask to prove a bound above it. *)
  let r = Verify.Driver.max_lateral_velocity ~components:2 net b0 in
  let v = Option.get r.Verify.Driver.value in
  let proof =
    Verify.Driver.prove_lateral_velocity_le ~components:2
      ~threshold:(v +. 0.5) net b0
  in
  (match proof.Verify.Driver.proof with
   | Verify.Driver.Proved -> ()
   | Verify.Driver.Disproved _ -> Alcotest.fail "threshold above max disproved?"
   | Verify.Driver.Unknown _ -> Alcotest.fail "should have concluded");
  Alcotest.(check bool) "nodes counted" true (proof.Verify.Driver.proof_nodes >= 0)

let test_prove_violated_threshold_gives_witness () =
  let net = mini_predictor 39 in
  let b0 = box 6 0.3 in
  let r = Verify.Driver.max_lateral_velocity ~components:2 net b0 in
  let v = Option.get r.Verify.Driver.value in
  let proof =
    Verify.Driver.prove_lateral_velocity_le ~components:2
      ~threshold:(v -. 0.2) net b0
  in
  match proof.Verify.Driver.proof with
  | Verify.Driver.Disproved w ->
      Alcotest.(check bool) "witness beats threshold" true
        (w.Verify.Driver.achieved > v -. 0.2);
      Alcotest.(check bool) "witness in box" true
        (Interval.Box.contains b0 w.Verify.Driver.input)
  | Verify.Driver.Proved -> Alcotest.fail "impossible: threshold below max proved"
  | Verify.Driver.Unknown _ -> Alcotest.fail "should have found a violation"

let test_proof_cheaper_than_max () =
  (* The paper's observation: deciding "lat <= loose bound" explores
     fewer nodes than computing the exact maximum. *)
  let net = mini_predictor 40 in
  let b0 = box 6 0.5 in
  let r = Verify.Driver.max_lateral_velocity ~components:2 net b0 in
  let v = Option.get r.Verify.Driver.value in
  let proof =
    Verify.Driver.prove_lateral_velocity_le ~components:2
      ~threshold:(v +. 2.0) net b0
  in
  Alcotest.(check bool) "proved" true
    (proof.Verify.Driver.proof = Verify.Driver.Proved);
  Alcotest.(check bool) "fewer or equal nodes" true
    (proof.Verify.Driver.proof_nodes <= r.Verify.Driver.nodes)

(* The acceptance test for the dual-simplex warm start: on the smoke
   verification model the warm-started B&B must report the same outcome,
   best bound and incumbent objective as the cold solver, while spending
   strictly fewer total LP iterations. Run at the solver level (one
   encoding, per-query objectives) so iteration counts are exactly
   comparable. *)
let test_warm_start_fewer_iterations_same_answer () =
  let net = mini_predictor 47 in
  let b0 = box 6 0.4 in
  let enc = Encoding.Encoder.encode net b0 in
  let priority = Encoding.Encoder.layer_order_priority enc in
  let solve ~warm k =
    Milp.Solver.solve ~warm
      ~branch_rule:(Milp.Solver.Priority priority)
      ~objective:(Encoding.Encoder.output_objective enc k)
      enc.Encoding.Encoder.model
  in
  let warm_total = ref 0 and cold_total = ref 0 in
  List.iter
    (fun k ->
      let w = solve ~warm:true k and c = solve ~warm:false k in
      Alcotest.(check bool)
        (Printf.sprintf "output %d: same outcome" k)
        true
        (w.Milp.Solver.outcome = c.Milp.Solver.outcome);
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "output %d: same best bound" k)
        c.Milp.Solver.best_bound w.Milp.Solver.best_bound;
      (match (w.Milp.Solver.incumbent, c.Milp.Solver.incumbent) with
       | Some (_, a), Some (_, b) ->
           Alcotest.(check (float 1e-6))
             (Printf.sprintf "output %d: same incumbent objective" k)
             b a
       | None, None -> ()
       | _ -> Alcotest.fail "incumbent presence differs warm vs cold");
      warm_total := !warm_total + w.Milp.Solver.lp_iterations;
      cold_total := !cold_total + c.Milp.Solver.lp_iterations)
    (List.init 2 (fun k -> Nn.Gmm.mu_lat_index ~components:2 k));
  Alcotest.(check bool)
    (Printf.sprintf "strictly fewer lp iterations (warm %d < cold %d)"
       !warm_total !cold_total)
    true
    (!warm_total < !cold_total)

(* Regression for the 1.5x budget over-spend: OBBT used to get
   0.5 * time_limit on top of the full time_limit granted to the output
   queries. The call must finish within the limit plus one node's
   slack. A wide network on a wide box guarantees both OBBT and the
   searches would gladly eat far more than the budget. *)
let test_finite_time_limit_respected_globally () =
  let net = small_net 48 [ 8; 48; 48; Nn.Gmm.output_dim ~components:2 ] in
  let b0 = box 8 1.0 in
  let time_limit = 4.0 in
  let t0 = Unix.gettimeofday () in
  let r =
    Verify.Driver.max_lateral_velocity ~time_limit ~tighten_rounds:2
      ~components:2 net b0
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (* The old scheme would legally spend 1.5x + slack; require well under
     that, with slack for one node and the final witness replay. *)
  Alcotest.(check bool)
    (Printf.sprintf "elapsed %.2fs within budget %.2fs (+slack)" elapsed
       time_limit)
    true
    (elapsed < (time_limit *. 1.25) +. 1.0);
  Alcotest.(check bool) "flagged or solved" true
    (r.Verify.Driver.timed_out || r.Verify.Driver.optimal)

(* The immutable-encoding fix is what makes per-component fan-out safe:
   solve every component query concurrently over ONE shared encoding
   and check the fan-out agrees with the sequential answers. *)
let test_component_queries_fan_out () =
  let net = mini_predictor 49 in
  let b0 = box 6 0.35 in
  let enc = Encoding.Encoder.encode net b0 in
  let outputs =
    Array.init 2 (fun k -> Nn.Gmm.mu_lat_index ~components:2 k)
  in
  let solve_query k =
    Milp.Solver.solve
      ~objective:(Encoding.Encoder.output_objective enc k)
      enc.Encoding.Encoder.model
  in
  let sequential = Array.map solve_query outputs in
  (* Fan the queries out across domains, all reading the same enc. *)
  let fanned =
    Milp.Parallel.map ~cores:2 ~init:(fun () -> ()) (fun () k -> solve_query k)
      outputs
  in
  Array.iteri
    (fun i seq ->
      let par = fanned.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "query %d same outcome" i)
        true
        (seq.Milp.Solver.outcome = par.Milp.Solver.outcome);
      match (seq.Milp.Solver.incumbent, par.Milp.Solver.incumbent) with
      | Some (_, a), Some (_, b) ->
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "query %d same objective" i)
            a b
      | None, None -> ()
      | _ -> Alcotest.fail "incumbent presence differs")
    sequential

(* Verdicts must not depend on the bound analysis behind the encoding:
   tighter big-Ms shrink the search, never the feasible set. *)
let test_bound_modes_agree () =
  let net = mini_predictor 50 in
  let b0 = box 6 0.35 in
  let run bound_mode =
    Verify.Driver.max_lateral_velocity ~bound_mode ~tighten_rounds:0
      ~components:2 net b0
  in
  let interval = run Encoding.Encoder.Interval_bounds in
  let symbolic = run Encoding.Encoder.Symbolic_bounds in
  Alcotest.(check bool) "interval optimal" true interval.Verify.Driver.optimal;
  Alcotest.(check bool) "symbolic optimal" true symbolic.Verify.Driver.optimal;
  Alcotest.(check (float 1e-4)) "same maximum"
    (Option.get interval.Verify.Driver.value)
    (Option.get symbolic.Verify.Driver.value);
  Alcotest.(check int) "per-component timings reported" 2
    (Array.length symbolic.Verify.Driver.component_elapsed);
  let st = symbolic.Verify.Driver.encoder_stats in
  Alcotest.(check int) "stats expose the binary count"
    symbolic.Verify.Driver.unstable_neurons st.Encoding.Encoder.unstable

(* The incomplete pre-pass alone must prove a Table-II-style decision
   query — zero branch & bound nodes — when the threshold sits between
   the symbolic and interval output bounds, i.e. exactly where only the
   tighter analysis discharges the property. *)
let test_prepass_proves_with_zero_nodes () =
  let net = mini_predictor 51 in
  let b0 = box 6 0.35 in
  let upper_of bounds k =
    let post = bounds.Encoding.Bounds.post in
    post.(Array.length post - 1).(Nn.Gmm.mu_lat_index ~components:2 k)
      .Interval.hi
  in
  let interval_b = Encoding.Bounds.propagate net b0 in
  let symbolic_b =
    let s = Absint.Symbolic.propagate net b0 in
    { Encoding.Bounds.pre = s.Absint.Symbolic.pre; post = s.Absint.Symbolic.post }
  in
  let max_over bounds =
    Float.max (upper_of bounds 0) (upper_of bounds 1)
  in
  let sym_u = max_over symbolic_b and int_u = max_over interval_b in
  Alcotest.(check bool)
    (Printf.sprintf "symbolic output bound strictly tighter (%.4f < %.4f)"
       sym_u int_u)
    true (sym_u < int_u);
  let threshold = 0.5 *. (sym_u +. int_u) in
  let proof =
    Verify.Driver.prove_lateral_velocity_le
      ~bound_mode:Encoding.Encoder.Symbolic_bounds ~tighten_rounds:0
      ~components:2 ~threshold net b0
  in
  Alcotest.(check bool) "proved" true
    (proof.Verify.Driver.proof = Verify.Driver.Proved);
  Alcotest.(check int) "zero search nodes" 0 proof.Verify.Driver.proof_nodes;
  Alcotest.(check int) "every component presolved" 2
    proof.Verify.Driver.presolved;
  (* The same threshold under interval bounds cannot be discharged by
     the pre-pass (it may still be proved — by actual search). *)
  let interval_proof =
    Verify.Driver.prove_lateral_velocity_le
      ~bound_mode:Encoding.Encoder.Interval_bounds ~tighten_rounds:0
      ~components:2 ~threshold net b0
  in
  Alcotest.(check bool) "interval pre-pass cannot discharge all" true
    (interval_proof.Verify.Driver.presolved < 2);
  Alcotest.(check bool) "verdicts agree" true
    (interval_proof.Verify.Driver.proof = Verify.Driver.Proved)

(* Per-component parallel path: same verdict and value as sequential,
   one timing slot per component. *)
let test_parallel_components_agree () =
  let net = mini_predictor 52 in
  let b0 = box 6 0.35 in
  let seq = Verify.Driver.max_lateral_velocity ~components:2 net b0 in
  let par = Verify.Driver.max_lateral_velocity ~cores:2 ~components:2 net b0 in
  Alcotest.(check bool) "sequential optimal" true seq.Verify.Driver.optimal;
  Alcotest.(check bool) "parallel optimal" true par.Verify.Driver.optimal;
  Alcotest.(check (float 1e-5)) "same maximum"
    (Option.get seq.Verify.Driver.value)
    (Option.get par.Verify.Driver.value);
  Alcotest.(check int) "one timing per component" 2
    (Array.length par.Verify.Driver.component_elapsed);
  Array.iteri
    (fun i t ->
      Alcotest.(check bool)
        (Printf.sprintf "component %d timing sane" i)
        true
        (t >= 0.0 && t <= par.Verify.Driver.elapsed +. 1e-6))
    par.Verify.Driver.component_elapsed

let test_time_limit_respected () =
  let net = small_net 41 [ 8; 16; 16; 16; 4 ] in
  let b0 = box 8 1.0 in
  let t0 = Unix.gettimeofday () in
  let r = Verify.Driver.maximize_output ~time_limit:1.0 ~output:0 net b0 in
  let elapsed = Unix.gettimeofday () -. t0 in
  (* Allow generous slack for the encoding and final LP solve. *)
  Alcotest.(check bool) "returns promptly" true (elapsed < 20.0);
  Alcotest.(check bool) "flagged or solved" true
    (r.Verify.Driver.timed_out || r.Verify.Driver.optimal)

(* With a zero time budget the driver can do no branching at all.  It
   must still flag the timeout, report an upper bound that soundly
   covers anything sampling can find, and never fabricate a witness it
   cannot replay through the real network. *)
let prop_zero_time_limit_honest =
  QCheck.Test.make ~name:"zero time limit: flagged, sound, honest" ~count:10
    (QCheck.make QCheck.Gen.(pair (int_range 0 999) (int_range 2 5)))
    (fun (seed, width) ->
      let net =
        small_net seed [ 6; width; width; Nn.Gmm.output_dim ~components:2 ]
      in
      let b0 = box 6 0.3 in
      let r =
        Verify.Driver.max_lateral_velocity ~time_limit:0.0 ~components:2 net b0
      in
      let rng = Linalg.Rng.create (seed + 1) in
      let sampled, _ =
        Verify.Driver.sampled_max_lateral_velocity ~rng ~samples:300
          ~components:2 net b0
      in
      r.Verify.Driver.timed_out
      && (not r.Verify.Driver.optimal)
      && sampled <= r.Verify.Driver.upper_bound +. 1e-5
      && (match r.Verify.Driver.witness with
         | None -> true
         | Some w ->
             Interval.Box.contains b0 w.Verify.Driver.input
             && Linalg.Vec.approx_equal ~eps:1e-6
                  (Nn.Network.forward net w.Verify.Driver.input)
                  w.Verify.Driver.outputs))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "verify"
    [
      ( "property",
        [
          quick "output indices" test_property_output_indices;
          quick "pp" test_property_pp;
        ] );
      ( "scenario",
        [
          quick "pins presence" test_scenario_vehicle_on_left_pins_presence;
          quick "inside domain" test_scenario_inside_domain;
          quick "free left" test_scenario_free_left_empty;
          quick "slack monotone" test_scenario_slack_monotone;
          quick "concretize" test_scenario_concretize;
        ] );
      ( "driver",
        [
          slow "maximize sound" test_maximize_output_optimal_and_sound;
          slow "witness replays" test_witness_replays;
          slow "components" test_max_lateral_velocity_components;
          slow "sampled bounded" test_sampled_max_bounded_by_upper;
          slow "prove trivial" test_prove_trivial_threshold;
          slow "prove violated" test_prove_violated_threshold_gives_witness;
          slow "proof cheaper" test_proof_cheaper_than_max;
          slow "time limit" test_time_limit_respected;
          slow "warm start acceptance" test_warm_start_fewer_iterations_same_answer;
          slow "finite budget global" test_finite_time_limit_respected_globally;
          slow "component fan-out" test_component_queries_fan_out;
          slow "bound modes agree" test_bound_modes_agree;
          slow "pre-pass proves, zero nodes" test_prepass_proves_with_zero_nodes;
          slow "parallel components agree" test_parallel_components_agree;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_zero_time_limit_honest ] );
    ]

let relu_net seed dims =
  let rng = Linalg.Rng.create seed in
  Nn.Network.create ~rng dims

let tanh_net seed dims =
  let rng = Linalg.Rng.create seed in
  Nn.Network.create ~rng ~hidden_activation:Nn.Activation.Tanh dims

(* {1 Static analysis: the paper's Sec. II argument} *)

let test_relu_counts () =
  let net = relu_net 1 [ 5; 10; 10; 3 ] in
  let a = Coverage.Mcdc.analyze net in
  Alcotest.(check int) "one decision per relu neuron" 20 a.Coverage.Mcdc.decisions;
  Alcotest.(check int) "two obligations each" 40 a.Coverage.Mcdc.obligations;
  Alcotest.(check (float 0.0)) "branch space 2^20" 20.0
    a.Coverage.Mcdc.branch_combinations_log2

let test_tanh_trivial () =
  let net = tanh_net 2 [ 5; 10; 10; 3 ] in
  let a = Coverage.Mcdc.analyze net in
  Alcotest.(check int) "no decisions" 0 a.Coverage.Mcdc.decisions;
  Alcotest.(check int) "one test case suffices" 1 a.Coverage.Mcdc.min_test_cases

let test_i4xn_exponential_growth () =
  (* The paper's point: obligations grow linearly, branch combinations
     exponentially with width. *)
  let widths = [ 10; 20; 40 ] in
  let analyses =
    List.map
      (fun w ->
        let rng = Linalg.Rng.create w in
        Coverage.Mcdc.analyze (Nn.Network.i4xn ~rng w))
      widths
  in
  List.iter2
    (fun w a ->
      Alcotest.(check int) "decisions = 4w" (4 * w) a.Coverage.Mcdc.decisions)
    widths analyses;
  match analyses with
  | [ a10; _; a40 ] ->
      Alcotest.(check (float 0.0)) "log2 gap" 120.0
        (a40.Coverage.Mcdc.branch_combinations_log2
         -. a10.Coverage.Mcdc.branch_combinations_log2)
  | _ -> Alcotest.fail "unexpected"

(* {1 Measured coverage} *)

let test_tanh_full_coverage_single_test () =
  let net = tanh_net 3 [ 4; 6; 2 ] in
  let m = Coverage.Mcdc.measure net [| Array.make 4 0.1 |] in
  Alcotest.(check (float 0.0)) "100% from one test" 100.0 m.Coverage.Mcdc.mcdc_percent;
  Alcotest.(check int) "one test" 1 m.Coverage.Mcdc.tests

let test_crafted_full_branch_coverage () =
  (* One neuron: z = x. Tests x=1 and x=-1 cover both outcomes. *)
  let l0 =
    Nn.Layer.make (Linalg.Mat.of_rows [| [| 1.0 |] |]) [| 0.0 |] Nn.Activation.Relu
  in
  let l1 =
    Nn.Layer.make (Linalg.Mat.of_rows [| [| 1.0 |] |]) [| 0.0 |]
      Nn.Activation.Identity
  in
  let net = Nn.Network.make [| l0; l1 |] in
  let m = Coverage.Mcdc.measure net [| [| 1.0 |]; [| -1.0 |] |] in
  Alcotest.(check (float 0.0)) "full" 100.0 m.Coverage.Mcdc.mcdc_percent;
  Alcotest.(check int) "two patterns" 2 m.Coverage.Mcdc.distinct_patterns;
  let half = Coverage.Mcdc.measure net [| [| 1.0 |] |] in
  Alcotest.(check (float 0.0)) "half covered" 50.0 half.Coverage.Mcdc.mcdc_percent

let test_patterns_bounded_by_tests () =
  let net = relu_net 4 [ 4; 8; 8; 2 ] in
  let rng = Linalg.Rng.create 5 in
  let inputs =
    Array.init 50 (fun _ -> Array.init 4 (fun _ -> Linalg.Rng.uniform rng (-1.0) 1.0))
  in
  let m = Coverage.Mcdc.measure net inputs in
  Alcotest.(check bool) "patterns <= tests" true
    (m.Coverage.Mcdc.distinct_patterns <= m.Coverage.Mcdc.tests);
  Alcotest.(check bool) "at least one pattern" true
    (m.Coverage.Mcdc.distinct_patterns >= 1);
  Alcotest.(check bool) "partial coverage" true
    (m.Coverage.Mcdc.covered_obligations <= m.Coverage.Mcdc.total_obligations)

let test_coverage_monotone_in_tests () =
  let net = relu_net 6 [ 4; 10; 10; 2 ] in
  let rng = Linalg.Rng.create 7 in
  let inputs n =
    Array.init n (fun _ -> Array.init 4 (fun _ -> Linalg.Rng.uniform rng (-1.5) 1.5))
  in
  let small = Coverage.Mcdc.measure net (inputs 5) in
  let large = Coverage.Mcdc.measure net (inputs 500) in
  Alcotest.(check bool) "more tests, at least as much coverage" true
    (large.Coverage.Mcdc.mcdc_percent >= small.Coverage.Mcdc.mcdc_percent -. 1e-9)

let test_measure_empty_rejected () =
  let net = relu_net 8 [ 2; 3; 1 ] in
  Alcotest.check_raises "empty" (Invalid_argument "Mcdc.measure: empty test suite")
    (fun () -> ignore (Coverage.Mcdc.measure net [||]))

let test_render () =
  let net = relu_net 9 [ 3; 5; 2 ] in
  let a = Coverage.Mcdc.analyze net in
  let m = Coverage.Mcdc.measure net [| [| 0.1; 0.2; 0.3 |] |] in
  let s = Coverage.Mcdc.render a (Some m) in
  Alcotest.(check bool) "mentions decisions" true (String.length s > 30);
  let s2 = Coverage.Mcdc.render a None in
  Alcotest.(check bool) "works without measurement" true (String.length s2 > 10)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "coverage"
    [
      ( "analysis",
        [
          quick "relu counts" test_relu_counts;
          quick "tanh trivial" test_tanh_trivial;
          quick "exponential growth" test_i4xn_exponential_growth;
        ] );
      ( "measurement",
        [
          quick "tanh full coverage" test_tanh_full_coverage_single_test;
          quick "crafted branches" test_crafted_full_branch_coverage;
          quick "patterns bounded" test_patterns_bounded_by_tests;
          quick "monotone" test_coverage_monotone_in_tests;
          quick "empty rejected" test_measure_empty_rejected;
          quick "render" test_render;
        ] );
    ]

let check_float = Alcotest.(check (float 1e-9))

(* {1 Rng} *)

let test_rng_determinism () =
  let a = Linalg.Rng.create 42 and b = Linalg.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Linalg.Rng.int64 a) (Linalg.Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Linalg.Rng.create 1 and b = Linalg.Rng.create 2 in
  Alcotest.(check bool) "different first draw" false
    (Linalg.Rng.int64 a = Linalg.Rng.int64 b)

let test_rng_float_range () =
  let rng = Linalg.Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Linalg.Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_rng_uniform_range () =
  let rng = Linalg.Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Linalg.Rng.uniform rng (-3.0) 7.0 in
    Alcotest.(check bool) "in [-3, 7)" true (x >= -3.0 && x < 7.0)
  done

let test_rng_int_range () =
  let rng = Linalg.Rng.create 5 in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    let k = Linalg.Rng.int rng 7 in
    Alcotest.(check bool) "in [0, 7)" true (k >= 0 && k < 7);
    seen.(k) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_int_power_of_two () =
  let rng = Linalg.Rng.create 6 in
  for _ = 1 to 500 do
    let k = Linalg.Rng.int rng 8 in
    Alcotest.(check bool) "in [0, 8)" true (k >= 0 && k < 8)
  done

let test_rng_gaussian_moments () =
  let rng = Linalg.Rng.create 7 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Linalg.Rng.gaussian rng) in
  let mean = Linalg.Stats.mean xs and std = Linalg.Stats.stddev xs in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "stddev near 1" true (Float.abs (std -. 1.0) < 0.05)

let test_rng_split_independent () =
  let a = Linalg.Rng.create 11 in
  let b = Linalg.Rng.split a in
  let xa = Linalg.Rng.int64 a and xb = Linalg.Rng.int64 b in
  Alcotest.(check bool) "split streams differ" false (xa = xb)

let test_rng_shuffle_is_permutation () =
  let rng = Linalg.Rng.create 8 in
  let a = Array.init 50 Fun.id in
  Linalg.Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_copy () =
  let a = Linalg.Rng.create 9 in
  ignore (Linalg.Rng.int64 a);
  let b = Linalg.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Linalg.Rng.int64 a)
    (Linalg.Rng.int64 b)

(* {1 Vec} *)

let test_vec_add_sub () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 0.5; -1.0; 2.0 |] in
  Alcotest.(check bool) "add" true
    (Linalg.Vec.approx_equal (Linalg.Vec.add a b) [| 1.5; 1.0; 5.0 |]);
  Alcotest.(check bool) "sub" true
    (Linalg.Vec.approx_equal (Linalg.Vec.sub a b) [| 0.5; 3.0; 1.0 |])

let test_vec_dot_norm () =
  let a = [| 3.0; 4.0 |] in
  check_float "dot" 25.0 (Linalg.Vec.dot a a);
  check_float "norm2" 5.0 (Linalg.Vec.norm2 a);
  check_float "norm_inf" 4.0 (Linalg.Vec.norm_inf a)

let test_vec_dim_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Linalg.Vec.add [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Linalg.Vec.axpy 2.0 [| 3.0; -1.0 |] y;
  Alcotest.(check bool) "axpy" true (Linalg.Vec.approx_equal y [| 7.0; -1.0 |])

let test_vec_argmax_argmin () =
  let v = [| 1.0; 5.0; -2.0; 5.0 |] in
  Alcotest.(check int) "argmax first winner" 1 (Linalg.Vec.argmax v);
  Alcotest.(check int) "argmin" 2 (Linalg.Vec.argmin v)

let test_vec_stats () =
  let v = [| 2.0; 4.0; 6.0 |] in
  check_float "sum" 12.0 (Linalg.Vec.sum v);
  check_float "mean" 4.0 (Linalg.Vec.mean v);
  check_float "min" 2.0 (Linalg.Vec.min v);
  check_float "max" 6.0 (Linalg.Vec.max v)

let test_vec_empty_errors () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Vec.mean: empty vector")
    (fun () -> ignore (Linalg.Vec.mean [||]))

(* {1 Mat} *)

let test_mat_identity_mul () =
  let id = Linalg.Mat.identity 3 in
  let m = Linalg.Mat.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |]; [| 7.0; 8.0; 10.0 |] |] in
  Alcotest.(check bool) "I*m = m" true
    (Linalg.Mat.approx_equal (Linalg.Mat.mul id m) m);
  Alcotest.(check bool) "m*I = m" true
    (Linalg.Mat.approx_equal (Linalg.Mat.mul m id) m)

let test_mat_mul_known () =
  let a = Linalg.Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Linalg.Mat.of_rows [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let expected = Linalg.Mat.of_rows [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |] in
  Alcotest.(check bool) "2x2 product" true
    (Linalg.Mat.approx_equal (Linalg.Mat.mul a b) expected)

let test_mat_mul_vec () =
  let m = Linalg.Mat.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 0.0; -1.0; 1.0 |] |] in
  let y = Linalg.Mat.mul_vec m [| 1.0; 1.0; 1.0 |] in
  Alcotest.(check bool) "mat-vec" true (Linalg.Vec.approx_equal y [| 6.0; 0.0 |])

let test_mat_mul_vec_transpose () =
  let m = Linalg.Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let y = [| 1.0; 1.0; 1.0 |] in
  let expected = Linalg.Mat.mul_vec (Linalg.Mat.transpose m) y in
  Alcotest.(check bool) "m^T y" true
    (Linalg.Vec.approx_equal (Linalg.Mat.mul_vec_transpose m y) expected)

let test_mat_transpose_involution () =
  let m = Linalg.Mat.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  Alcotest.(check bool) "(m^T)^T = m" true
    (Linalg.Mat.approx_equal (Linalg.Mat.transpose (Linalg.Mat.transpose m)) m)

let test_mat_outer () =
  let o = Linalg.Mat.outer [| 1.0; 2.0 |] [| 3.0; 4.0; 5.0 |] in
  Alcotest.(check int) "rows" 2 (Linalg.Mat.rows o);
  Alcotest.(check int) "cols" 3 (Linalg.Mat.cols o);
  check_float "o(1,2)" 10.0 (Linalg.Mat.get o 1 2)

let test_mat_add_in_place () =
  let a = Linalg.Mat.of_rows [| [| 1.0; 1.0 |] |] in
  Linalg.Mat.add_in_place a (Linalg.Mat.of_rows [| [| 2.0; -1.0 |] |]);
  Alcotest.(check bool) "in place add" true
    (Linalg.Mat.approx_equal a (Linalg.Mat.of_rows [| [| 3.0; 0.0 |] |]))

let test_mat_row_col () =
  let m = Linalg.Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "row" true (Linalg.Vec.approx_equal (Linalg.Mat.row m 1) [| 3.0; 4.0 |]);
  Alcotest.(check bool) "col" true (Linalg.Vec.approx_equal (Linalg.Mat.col m 1) [| 2.0; 4.0 |])

let test_mat_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged rows")
    (fun () -> ignore (Linalg.Mat.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_mat_frobenius () =
  let m = Linalg.Mat.of_rows [| [| 3.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  check_float "frobenius" 5.0 (Linalg.Mat.frobenius m)

(* Regression: a zero coefficient multiplying a NaN must still produce
   NaN (0 * nan = nan). The old [mul] short-circuited [aik <> 0.0] and
   silently suppressed NaN propagation — exactly the corruption the
   fault campaign's NaN detection relies on observing. *)
let test_mat_mul_zero_times_nan () =
  let a = Linalg.Mat.of_rows [| [| 0.0; 1.0 |] |] in
  let b = Linalg.Mat.of_rows [| [| Float.nan |]; [| 2.0 |] |] in
  Alcotest.(check bool) "mul: 0 * nan is nan" true
    (Float.is_nan (Linalg.Mat.get (Linalg.Mat.mul a b) 0 0));
  Alcotest.(check bool) "mul_naive agrees" true
    (Float.is_nan (Linalg.Mat.get (Linalg.Mat.mul_naive a b) 0 0));
  Alcotest.(check bool) "mul_vec: 0 * nan is nan" true
    (Float.is_nan (Linalg.Mat.mul_vec a [| Float.nan; 2.0 |]).(0));
  let m = Linalg.Mat.of_rows [| [| Float.nan; 2.0 |] |] in
  Alcotest.(check bool) "mul_vec_transpose: nan row, zero coeff" true
    (Float.is_nan (Linalg.Mat.mul_vec_transpose m [| 0.0 |]).(0))

let test_mat_of_cols () =
  let m =
    Linalg.Mat.of_cols ~rows:2 [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |]
  in
  Alcotest.(check int) "rows" 2 (Linalg.Mat.rows m);
  Alcotest.(check int) "cols" 3 (Linalg.Mat.cols m);
  Alcotest.(check bool) "column layout" true
    (Linalg.Vec.approx_equal (Linalg.Mat.col m 1) [| 3.0; 4.0 |]);
  let empty = Linalg.Mat.of_cols ~rows:4 [||] in
  Alcotest.(check int) "empty batch rows" 4 (Linalg.Mat.rows empty);
  Alcotest.(check int) "empty batch cols" 0 (Linalg.Mat.cols empty);
  let single = Linalg.Mat.of_cols ~rows:3 [| [| 7.0; 8.0; 9.0 |] |] in
  Alcotest.(check bool) "single column" true
    (Linalg.Vec.approx_equal (Linalg.Mat.col single 0) [| 7.0; 8.0; 9.0 |]);
  Alcotest.(check bool) "ragged column rejected" true
    (match Linalg.Mat.of_cols ~rows:2 [| [| 1.0; 2.0 |]; [| 3.0 |] |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_mat_mul_into () =
  let rng = Linalg.Rng.create 33 in
  let a = Linalg.Mat.init 5 7 (fun _ _ -> Linalg.Rng.uniform rng (-2.0) 2.0) in
  let b = Linalg.Mat.init 7 4 (fun _ _ -> Linalg.Rng.uniform rng (-2.0) 2.0) in
  let dst = Linalg.Mat.create 5 4 42.0 in
  Linalg.Mat.mul_into ~dst a b;
  Alcotest.(check bool) "overwrites dst with a*b" true
    (Linalg.Mat.approx_equal ~eps:0.0 dst (Linalg.Mat.mul a b));
  Alcotest.(check bool) "shape mismatch rejected" true
    (match Linalg.Mat.mul_into ~dst:(Linalg.Mat.zeros 4 4) a b with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_mat_row_sums_broadcast () =
  let m = Linalg.Mat.of_rows [| [| 1.0; 2.0; 3.0 |]; [| -1.0; 0.5; 0.5 |] |] in
  Alcotest.(check bool) "row sums" true
    (Linalg.Vec.approx_equal (Linalg.Mat.row_sums m) [| 6.0; 0.0 |]);
  Linalg.Mat.add_col_broadcast m [| 10.0; 20.0 |];
  Alcotest.(check bool) "bias broadcast over columns" true
    (Linalg.Mat.approx_equal m
       (Linalg.Mat.of_rows [| [| 11.0; 12.0; 13.0 |]; [| 19.0; 20.5; 20.5 |] |]))

(* {1 Stats} *)

let test_stats_mean_var () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Linalg.Stats.mean xs);
  check_float "variance" 4.0 (Linalg.Stats.variance xs);
  check_float "stddev" 2.0 (Linalg.Stats.stddev xs)

let test_stats_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 2.0; 4.0; 6.0; 8.0 |] in
  check_float "perfect positive" 1.0 (Linalg.Stats.correlation xs ys);
  let zs = [| 8.0; 6.0; 4.0; 2.0 |] in
  check_float "perfect negative" (-1.0) (Linalg.Stats.correlation xs zs);
  let flat = [| 5.0; 5.0; 5.0; 5.0 |] in
  check_float "degenerate" 0.0 (Linalg.Stats.correlation xs flat)

let test_stats_percentile () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "p0" 1.0 (Linalg.Stats.percentile xs 0.0);
  check_float "p100" 4.0 (Linalg.Stats.percentile xs 100.0);
  check_float "p50" 2.5 (Linalg.Stats.percentile xs 50.0)

let test_stats_histogram () =
  let xs = [| 0.1; 0.2; 0.9; -5.0; 5.0 |] in
  let h = Linalg.Stats.histogram ~bins:2 ~lo:0.0 ~hi:1.0 xs in
  Alcotest.(check (array int)) "clamped bins" [| 3; 2 |] h

let test_stats_welford_matches_direct () =
  let rng = Linalg.Rng.create 21 in
  let xs = Array.init 500 (fun _ -> Linalg.Rng.uniform rng (-5.0) 5.0) in
  let push, finish = Linalg.Stats.welford () in
  Array.iter push xs;
  let mean, var, count = finish () in
  Alcotest.(check int) "count" 500 count;
  Alcotest.(check (float 1e-9)) "mean" (Linalg.Stats.mean xs) mean;
  Alcotest.(check (float 1e-9)) "variance" (Linalg.Stats.variance xs) var

(* {1 Properties} *)

let prop_dot_commutative =
  QCheck.Test.make ~name:"dot commutative" ~count:200
    QCheck.(pair (list_of_size (Gen.return 5) (float_range (-10.0) 10.0))
              (list_of_size (Gen.return 5) (float_range (-10.0) 10.0)))
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      Float.abs (Linalg.Vec.dot a b -. Linalg.Vec.dot b a) < 1e-9)

let prop_matvec_linear =
  QCheck.Test.make ~name:"mat-vec linearity" ~count:100
    QCheck.(triple (list_of_size (Gen.return 4) (float_range (-5.0) 5.0))
              (list_of_size (Gen.return 4) (float_range (-5.0) 5.0))
              (float_range (-3.0) 3.0))
    (fun (x, y, s) ->
      let rng = Linalg.Rng.create 77 in
      let m = Linalg.Mat.init 3 4 (fun _ _ -> Linalg.Rng.uniform rng (-2.0) 2.0) in
      let x = Array.of_list x and y = Array.of_list y in
      let lhs =
        Linalg.Mat.mul_vec m
          (Linalg.Vec.add (Linalg.Vec.scale s x) y)
      in
      let rhs =
        Linalg.Vec.add
          (Linalg.Vec.scale s (Linalg.Mat.mul_vec m x))
          (Linalg.Mat.mul_vec m y)
      in
      Linalg.Vec.approx_equal ~eps:1e-6 lhs rhs)

let prop_transpose_mul =
  QCheck.Test.make ~name:"(AB)^T = B^T A^T" ~count:50
    QCheck.(int_range 1 5)
    (fun n ->
      let rng = Linalg.Rng.create (n + 100) in
      let a = Linalg.Mat.init n 3 (fun _ _ -> Linalg.Rng.uniform rng (-1.0) 1.0) in
      let b = Linalg.Mat.init 3 4 (fun _ _ -> Linalg.Rng.uniform rng (-1.0) 1.0) in
      Linalg.Mat.approx_equal ~eps:1e-9
        (Linalg.Mat.transpose (Linalg.Mat.mul a b))
        (Linalg.Mat.mul (Linalg.Mat.transpose b) (Linalg.Mat.transpose a)))

(* The blocked kernel must be bit-identical to the triple loop: same
   ascending-k accumulation order, no contraction. [eps:0.0] on purpose. *)
let prop_mul_matches_naive =
  QCheck.Test.make ~name:"blocked mul = naive mul (bit-exact)" ~count:60
    QCheck.(
      quad (int_range 1 40) (int_range 1 40) (int_range 1 40) (int_range 0 10000))
    (fun (m, k, n, seed) ->
      let rng = Linalg.Rng.create seed in
      let a = Linalg.Mat.init m k (fun _ _ -> Linalg.Rng.uniform rng (-3.0) 3.0) in
      let b = Linalg.Mat.init k n (fun _ _ -> Linalg.Rng.uniform rng (-3.0) 3.0) in
      Linalg.Mat.approx_equal ~eps:0.0 (Linalg.Mat.mul a b)
        (Linalg.Mat.mul_naive a b))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "linalg"
    [
      ( "rng",
        [
          quick "determinism" test_rng_determinism;
          quick "seeds differ" test_rng_seeds_differ;
          quick "float range" test_rng_float_range;
          quick "uniform range" test_rng_uniform_range;
          quick "int range" test_rng_int_range;
          quick "int power of two" test_rng_int_power_of_two;
          quick "gaussian moments" test_rng_gaussian_moments;
          quick "split independent" test_rng_split_independent;
          quick "shuffle permutation" test_rng_shuffle_is_permutation;
          quick "copy" test_rng_copy;
        ] );
      ( "vec",
        [
          quick "add/sub" test_vec_add_sub;
          quick "dot/norm" test_vec_dot_norm;
          quick "dim mismatch" test_vec_dim_mismatch;
          quick "axpy" test_vec_axpy;
          quick "argmax/argmin" test_vec_argmax_argmin;
          quick "aggregates" test_vec_stats;
          quick "empty errors" test_vec_empty_errors;
        ] );
      ( "mat",
        [
          quick "identity" test_mat_identity_mul;
          quick "known product" test_mat_mul_known;
          quick "mat-vec" test_mat_mul_vec;
          quick "mat-vec transpose" test_mat_mul_vec_transpose;
          quick "transpose involution" test_mat_transpose_involution;
          quick "outer" test_mat_outer;
          quick "add in place" test_mat_add_in_place;
          quick "row/col" test_mat_row_col;
          quick "ragged rejected" test_mat_ragged_rejected;
          quick "frobenius" test_mat_frobenius;
          quick "0 * nan propagates" test_mat_mul_zero_times_nan;
          quick "of_cols" test_mat_of_cols;
          quick "mul_into" test_mat_mul_into;
          quick "row sums / broadcast" test_mat_row_sums_broadcast;
        ] );
      ( "stats",
        [
          quick "mean/var" test_stats_mean_var;
          quick "correlation" test_stats_correlation;
          quick "percentile" test_stats_percentile;
          quick "histogram" test_stats_histogram;
          quick "welford" test_stats_welford_matches_direct;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_dot_commutative;
            prop_matvec_linear;
            prop_transpose_mul;
            prop_mul_matches_naive;
          ] );
    ]

(* Fault models and the injection campaign: determinism, non-mutation,
   stuck-at semantics, and the campaign's detection invariants. *)

let components = 3

let make_net seed width =
  let rng = Linalg.Rng.create seed in
  Nn.Network.i4xn ~rng ~output_dim:(Nn.Gmm.output_dim ~components) width

let scenes seed n =
  let rng = Linalg.Rng.create seed in
  Array.init n (fun _ -> Array.init 84 (fun _ -> Linalg.Rng.uniform rng (-1.0) 1.0))

let test_flip_bit_involutive () =
  List.iter
    (fun bit ->
      List.iter
        (fun x ->
          let flipped = Fault.Model.flip_bit ~bit x in
          Alcotest.(check bool)
            (Printf.sprintf "flip bit %d of %g changes it" bit x)
            true
            (Int64.bits_of_float flipped <> Int64.bits_of_float x);
          Alcotest.(check bool)
            (Printf.sprintf "double flip bit %d of %g restores" bit x)
            true
            (Fault.Model.flip_bit ~bit flipped = x
            || Float.is_nan (Fault.Model.flip_bit ~bit flipped) && Float.is_nan x))
        [ 0.15; -2.5; 0.0; 1e10 ])
    [ 0; 31; 51; 52; 62; 63 ]

let test_inject_does_not_mutate () =
  let net = make_net 3 6 in
  let x = (scenes 4 1).(0) in
  let before = Nn.Network.forward net x in
  let faults =
    [
      Fault.Model.Weight_bit_flip { layer = 0; row = 0; col = 0; bit = 62 };
      Fault.Model.Bias_bit_flip { layer = 1; row = 2; bit = 40 };
      Fault.Model.Stuck_neuron
        { layer = 2; neuron = 1; mode = Fault.Model.Stuck_saturation };
      Fault.Model.Weight_drift { seed = 11; sigma = 0.3 };
    ]
  in
  List.iter (fun f -> ignore (Fault.Model.inject f net)) faults;
  let after = Nn.Network.forward net x in
  Alcotest.(check bool) "original network untouched" true
    (Linalg.Vec.approx_equal ~eps:0.0 before after)

let test_stuck_neuron_semantics () =
  let net = make_net 5 6 in
  let zeroed =
    Fault.Model.inject
      (Fault.Model.Stuck_neuron { layer = 1; neuron = 2; mode = Fault.Model.Stuck_zero })
      net
  in
  let l = Nn.Network.layer zeroed 1 in
  for c = 0 to Nn.Layer.input_dim l - 1 do
    Alcotest.(check (float 0.0)) "weight row zeroed" 0.0
      (Linalg.Mat.get l.Nn.Layer.weights 2 c)
  done;
  Alcotest.(check (float 0.0)) "bias zero" 0.0 l.Nn.Layer.bias.(2);
  let saturated =
    Fault.Model.inject
      (Fault.Model.Stuck_neuron
         { layer = 1; neuron = 2; mode = Fault.Model.Stuck_saturation })
      net
  in
  let l = Nn.Network.layer saturated 1 in
  Alcotest.(check (float 0.0)) "bias at saturation level"
    Fault.Model.saturation_level l.Nn.Layer.bias.(2)

let test_sample_deterministic () =
  let net = make_net 7 8 in
  let draw seed =
    let rng = Linalg.Rng.create seed in
    List.init 30 (fun _ -> Fault.Model.sample ~rng net)
  in
  Alcotest.(check bool) "same seed, same faults" true (draw 42 = draw 42);
  Alcotest.(check bool) "different seeds differ" true (draw 42 <> draw 43)

let test_sensor_dropout () =
  let ch = Fault.Model.input_channel (Fault.Model.Sensor_dropout { feature = 3 }) in
  let v = Array.init 84 (fun i -> float_of_int i +. 1.0) in
  let c = Fault.Model.corrupt ch v in
  Alcotest.(check (float 0.0)) "feature dropped" 0.0 c.(3);
  Alcotest.(check (float 0.0)) "others intact" 5.0 c.(4);
  Alcotest.(check (float 0.0)) "input not mutated" 4.0 v.(3)

let test_sensor_freeze () =
  let ch = Fault.Model.input_channel (Fault.Model.Sensor_freeze { feature = 0 }) in
  let at value =
    let v = Array.make 84 0.0 in
    v.(0) <- value;
    (Fault.Model.corrupt ch v).(0)
  in
  Alcotest.(check (float 0.0)) "first value passes" 1.5 (at 1.5);
  Alcotest.(check (float 0.0)) "later values frozen" 1.5 (at 9.0);
  Alcotest.(check (float 0.0)) "still frozen" 1.5 (at (-4.0))

let test_stale_hold () =
  let ch =
    Fault.Model.input_channel (Fault.Model.Stale_hold { feature = 0; lag = 2 })
  in
  let at value =
    let v = Array.make 84 0.0 in
    v.(0) <- value;
    (Fault.Model.corrupt ch v).(0)
  in
  (* While the delay line fills, the oldest value is held; afterwards
     values arrive exactly [lag] samples late. *)
  Alcotest.(check (float 0.0)) "t=0 sees oldest" 1.0 (at 1.0);
  Alcotest.(check (float 0.0)) "t=1 still oldest" 1.0 (at 2.0);
  Alcotest.(check (float 0.0)) "t=2 lagged by 2" 1.0 (at 3.0);
  Alcotest.(check (float 0.0)) "t=3 lagged by 2" 2.0 (at 4.0)

let campaign ?faults ?(trials = 40) seed =
  let net = make_net 9 8 in
  let scenes = scenes 10 25 in
  let envelope = Guard.envelope ~components ~lat_limit:1.0 () in
  let rng = Linalg.Rng.create seed in
  Fault.Campaign.run ~rng ~envelope ?faults ~scenes ~trials net

let test_campaign_reproducible () =
  let a = campaign 21 and b = campaign 21 in
  Alcotest.(check int) "detected" a.Fault.Campaign.detected b.Fault.Campaign.detected;
  Alcotest.(check int) "nan" a.Fault.Campaign.nan_trials b.Fault.Campaign.nan_trials;
  Alcotest.(check int) "violations" a.Fault.Campaign.violation_trials
    b.Fault.Campaign.violation_trials;
  Alcotest.(check int) "silent" a.Fault.Campaign.silent b.Fault.Campaign.silent;
  Alcotest.(check int) "fallbacks" a.Fault.Campaign.total_fallbacks
    b.Fault.Campaign.total_fallbacks;
  Alcotest.(check bool) "same faults" true
    (Array.for_all2
       (fun (x : Fault.Campaign.trial) (y : Fault.Campaign.trial) ->
         x.Fault.Campaign.fault = y.Fault.Campaign.fault)
       a.Fault.Campaign.trials b.Fault.Campaign.trials)

let test_campaign_invariants () =
  let r = campaign 22 in
  let n = Array.length r.Fault.Campaign.trials in
  Alcotest.(check int) "trial count" 40 n;
  Alcotest.(check int) "no escaped exceptions" 0
    r.Fault.Campaign.escaped_exceptions;
  Alcotest.(check int) "every nan fault detected" r.Fault.Campaign.nan_trials
    r.Fault.Campaign.nan_detected;
  Alcotest.(check int) "every violation detected"
    r.Fault.Campaign.violation_trials r.Fault.Campaign.violations_detected;
  Alcotest.(check int) "detected/silent/benign partition" n
    (r.Fault.Campaign.detected + r.Fault.Campaign.silent
   + r.Fault.Campaign.benign)

let test_campaign_pinned_nan_fault () =
  (* find_nan_fault locates a single bit flip that drives the unguarded
     path non-finite; the campaign must classify and detect it. *)
  let net = make_net 9 8 in
  let sc = scenes 10 25 in
  match Fault.Campaign.find_nan_fault ~components ~scenes:sc net with
  | None -> Alcotest.fail "no NaN-producing bit flip found on I4x8"
  | Some f ->
      let r = campaign ~faults:[ f ] ~trials:1 23 in
      Alcotest.(check bool) "nan trial recorded" true
        (r.Fault.Campaign.nan_trials >= 1);
      Alcotest.(check int) "all nan faults detected"
        r.Fault.Campaign.nan_trials r.Fault.Campaign.nan_detected;
      Alcotest.(check int) "nothing escaped" 0
        r.Fault.Campaign.escaped_exceptions

let test_campaign_parallel_matches_sequential () =
  (* Faults are sampled up front and trials are independent, so the
     work-stealing replay must reproduce the sequential tallies
     exactly. *)
  let net = make_net 9 8 in
  let sc = scenes 10 15 in
  let envelope = Guard.envelope ~components ~lat_limit:1.0 () in
  let go cores =
    let rng = Linalg.Rng.create 31 in
    Fault.Campaign.run ~rng ~envelope ~cores ~scenes:sc ~trials:20 net
  in
  let a = go 1 and b = go 3 in
  Alcotest.(check int) "no failed workers" 0 b.Fault.Campaign.failed_workers;
  Alcotest.(check int) "detected" a.Fault.Campaign.detected
    b.Fault.Campaign.detected;
  Alcotest.(check int) "nan" a.Fault.Campaign.nan_trials
    b.Fault.Campaign.nan_trials;
  Alcotest.(check int) "silent" a.Fault.Campaign.silent b.Fault.Campaign.silent;
  Alcotest.(check int) "benign" a.Fault.Campaign.benign b.Fault.Campaign.benign;
  Alcotest.(check int) "fallbacks" a.Fault.Campaign.total_fallbacks
    b.Fault.Campaign.total_fallbacks;
  Alcotest.(check bool) "same fault list" true
    (Array.for_all2
       (fun (x : Fault.Campaign.trial) (y : Fault.Campaign.trial) ->
         x.Fault.Campaign.fault = y.Fault.Campaign.fault)
       a.Fault.Campaign.trials b.Fault.Campaign.trials)

let test_campaign_requeues_dead_worker () =
  (* A worker domain dies mid-campaign (the progress callback detonates
     exactly once, inside whichever worker claims it first); the trial
     it was running must be re-queued and finished by the parent, so the
     tallies still match a clean sequential run. *)
  let net = make_net 9 8 in
  let sc = scenes 10 15 in
  let envelope = Guard.envelope ~components ~lat_limit:1.0 () in
  let baseline =
    let rng = Linalg.Rng.create 31 in
    Fault.Campaign.run ~rng ~envelope ~scenes:sc ~trials:20 net
  in
  let bomb = Atomic.make true in
  let progress _ _ =
    if Atomic.compare_and_set bomb true false then failwith "injected crash"
  in
  let r =
    let rng = Linalg.Rng.create 31 in
    Fault.Campaign.run ~rng ~envelope ~progress ~cores:2 ~scenes:sc ~trials:20
      net
  in
  Alcotest.(check int) "one worker died" 1 r.Fault.Campaign.failed_workers;
  Alcotest.(check int) "no trial dropped" 20
    (Array.length r.Fault.Campaign.trials);
  Alcotest.(check int) "detected matches clean run"
    baseline.Fault.Campaign.detected r.Fault.Campaign.detected;
  Alcotest.(check int) "nan matches clean run"
    baseline.Fault.Campaign.nan_trials r.Fault.Campaign.nan_trials;
  Alcotest.(check int) "silent matches clean run"
    baseline.Fault.Campaign.silent r.Fault.Campaign.silent;
  Alcotest.(check int) "fallbacks match clean run"
    baseline.Fault.Campaign.total_fallbacks r.Fault.Campaign.total_fallbacks

let test_campaign_reverify_sound () =
  (* Tiny network so the MILP re-verification stays fast: the empirical
     maximum over the replayed scenes must sit below the formal bound. *)
  let net = make_net 13 3 in
  let sc = scenes 14 8 in
  let envelope = Guard.envelope ~components ~lat_limit:1.0 () in
  let rng = Linalg.Rng.create 15 in
  let r =
    Fault.Campaign.run ~rng ~envelope ~reverify:1 ~reverify_time_limit:10.0
      ~scenes:sc ~trials:12 net
  in
  List.iter
    (fun rv ->
      Alcotest.(check bool)
        (Printf.sprintf "sound: %s" (Fault.Model.describe rv.Fault.Campaign.rv_fault))
        true rv.Fault.Campaign.rv_sound)
    r.Fault.Campaign.reverified

(* The batched replay is a pure throughput change: per-scene verdicts,
   counters and deviations must be the same whether scenes go through
   one at a time or in cache-blocked chunks (including a chunk size that
   does not divide the scene count). *)
let test_campaign_batch_invariance () =
  let net = make_net 9 8 in
  let sc = scenes 10 25 in
  let envelope = Guard.envelope ~components ~lat_limit:1.0 () in
  let go batch =
    let rng = Linalg.Rng.create 31 in
    Fault.Campaign.run ~rng ~envelope ~batch ~scenes:sc ~trials:30 net
  in
  let baseline = go 1 in
  List.iter
    (fun batch ->
      let r = go batch in
      let tag name = Printf.sprintf "batch %d: %s" batch name in
      Alcotest.(check int) (tag "detected") baseline.Fault.Campaign.detected
        r.Fault.Campaign.detected;
      Alcotest.(check int) (tag "nan") baseline.Fault.Campaign.nan_trials
        r.Fault.Campaign.nan_trials;
      Alcotest.(check int) (tag "violations")
        baseline.Fault.Campaign.violation_trials
        r.Fault.Campaign.violation_trials;
      Alcotest.(check int) (tag "silent") baseline.Fault.Campaign.silent
        r.Fault.Campaign.silent;
      Alcotest.(check int) (tag "benign") baseline.Fault.Campaign.benign
        r.Fault.Campaign.benign;
      Alcotest.(check int) (tag "fallbacks")
        baseline.Fault.Campaign.total_fallbacks
        r.Fault.Campaign.total_fallbacks;
      Alcotest.(check bool) (tag "per-trial deviations bit-equal") true
        (Array.for_all2
           (fun a b ->
             a.Fault.Campaign.max_deviation = b.Fault.Campaign.max_deviation
             && a.Fault.Campaign.detected = b.Fault.Campaign.detected
             && a.Fault.Campaign.silent = b.Fault.Campaign.silent)
           baseline.Fault.Campaign.trials r.Fault.Campaign.trials))
    [ 7; 25; 128 ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "fault"
    [
      ( "model",
        [
          quick "flip_bit involutive" test_flip_bit_involutive;
          quick "inject copies" test_inject_does_not_mutate;
          quick "stuck neuron" test_stuck_neuron_semantics;
          quick "sample deterministic" test_sample_deterministic;
        ] );
      ( "channel",
        [
          quick "dropout" test_sensor_dropout;
          quick "freeze" test_sensor_freeze;
          quick "stale hold" test_stale_hold;
        ] );
      ( "campaign",
        [
          quick "reproducible" test_campaign_reproducible;
          quick "invariants" test_campaign_invariants;
          quick "pinned nan fault" test_campaign_pinned_nan_fault;
          quick "parallel matches sequential"
            test_campaign_parallel_matches_sequential;
          quick "re-queues dead worker" test_campaign_requeues_dead_worker;
          quick "reverify sound" test_campaign_reverify_sound;
          quick "batch invariance" test_campaign_batch_invariance;
        ] );
    ]

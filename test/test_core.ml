let tiny_config =
  {
    (Pipeline.default_config ~width:4 ~seed:11 ()) with
    Pipeline.n_samples = 200;
    epochs = 3;
    risky_rate = 0.5;
    scenario_slack = 0.01;
    verify_time_limit = 20.0;
  }

(* The pipeline is expensive; run it once and share the artifacts. *)
let artifacts = lazy (Pipeline.run tiny_config)

let test_pillar_table_contents () =
  let s = Pillar.render_table () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true
        (let re = Str.regexp_string needle in
         try
           ignore (Str.search_forward re s 0);
           true
         with Not_found -> false))
    [
      "Implementation understandability";
      "Implementation correctness";
      "Specification validity";
      "neuron-to-feature";
      "MC/DC";
      "formal analysis";
      "new type of specification";
    ]

let test_pillar_rows () =
  Alcotest.(check int) "three rows" 3 (List.length Pillar.all);
  List.iter
    (fun row ->
      Alcotest.(check bool) "has adaptations" true
        (List.length row.Pillar.adaptations > 0))
    Pillar.all

let test_pipeline_artifacts_shape () =
  let a = Lazy.force artifacts in
  Alcotest.(check int) "audit covers all samples" tiny_config.Pipeline.n_samples
    a.Pipeline.audit.Sanitizer.total;
  Alcotest.(check int) "network width" 4
    (Nn.Layer.output_dim (Nn.Network.layer a.Pipeline.network 0));
  Alcotest.(check int) "84 inputs" 84 (Nn.Network.input_dim a.Pipeline.network);
  Alcotest.(check int) "epochs ran" tiny_config.Pipeline.epochs
    a.Pipeline.history.Train.Trainer.epochs_run;
  Alcotest.(check int) "scenario dimension" 84 (Array.length a.Pipeline.scenario);
  Alcotest.(check int) "mcdc decisions" 16 a.Pipeline.mcdc.Coverage.Mcdc.decisions

let test_pipeline_sanitizer_caught_contamination () =
  let a = Lazy.force artifacts in
  (* risky_rate 0.5 over 200 dense-traffic samples: contamination is
     near-certain, and the audit must have rejected something. *)
  Alcotest.(check bool) "rejected some" true
    (a.Pipeline.audit.Sanitizer.accepted < a.Pipeline.audit.Sanitizer.total)

let test_pipeline_verification_ran () =
  let a = Lazy.force artifacts in
  let v = a.Pipeline.verification in
  Alcotest.(check bool) "produced value or timed out" true
    (v.Verify.Driver.value <> None || v.Verify.Driver.timed_out);
  Alcotest.(check bool) "nodes explored" true (v.Verify.Driver.nodes > 0)

let test_pipeline_certify_consistent () =
  let a = Lazy.force artifacts in
  let verdict = Pipeline.certify a in
  Alcotest.(check bool) "data validated" true verdict.Pipeline.data_validated;
  (match verdict.Pipeline.property_holds with
   | Some true ->
       (* If declared safe, the verified max must actually be below the
          threshold whenever available. *)
       (match a.Pipeline.verification.Verify.Driver.value with
        | Some v ->
            Alcotest.(check bool) "consistent with max" true
              (v <= tiny_config.Pipeline.threshold +. 1e-6)
        | None -> ())
   | Some false | None -> ())

let test_pipeline_report_renders () =
  let a = Lazy.force artifacts in
  let s = Pipeline.render_report a in
  Alcotest.(check bool) "contains table" true
    (let re = Str.regexp_string "Table I" in
     try
       ignore (Str.search_forward re s 0);
       true
     with Not_found -> false);
  Alcotest.(check bool) "contains audit" true
    (let re = Str.regexp_string "data audit" in
     try
       ignore (Str.search_forward re s 0);
       true
     with Not_found -> false)

let test_pipeline_deterministic_data () =
  (* Same seed, same audit result (data generation is deterministic). *)
  let rng1 = Linalg.Rng.create 123 and rng2 = Linalg.Rng.create 123 in
  let s1 = Highway.Recorder.record ~rng:rng1 ~n_samples:100 () in
  let s2 = Highway.Recorder.record ~rng:rng2 ~n_samples:100 () in
  Array.iteri
    (fun i a ->
      Alcotest.(check bool)
        (Printf.sprintf "sample %d identical" i)
        true
        (Linalg.Vec.approx_equal ~eps:0.0 a.Highway.Recorder.features
           s2.(i).Highway.Recorder.features))
    s1

let test_closed_loop_evaluation () =
  let a = Lazy.force artifacts in
  let r = Evaluation.drive ~steps:150 ~components:3 a.Pipeline.network () in
  Alcotest.(check int) "steps recorded" 150 r.Evaluation.steps;
  Alcotest.(check bool) "speed sane" true
    (r.Evaluation.mean_speed > 0.0 && r.Evaluation.mean_speed < 50.0);
  Alcotest.(check bool) "risky count bounded" true
    (r.Evaluation.risky_suggestions <= r.Evaluation.steps);
  Alcotest.(check bool) "render nonempty" true
    (String.length (Evaluation.render r) > 20)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "core"
    [
      ( "pillar",
        [
          quick "table contents" test_pillar_table_contents;
          quick "rows" test_pillar_rows;
        ] );
      ( "pipeline",
        [
          slow "artifacts shape" test_pipeline_artifacts_shape;
          slow "sanitizer caught contamination" test_pipeline_sanitizer_caught_contamination;
          slow "verification ran" test_pipeline_verification_ran;
          slow "certify consistent" test_pipeline_certify_consistent;
          slow "report renders" test_pipeline_report_renders;
          quick "deterministic data" test_pipeline_deterministic_data;
          slow "closed-loop evaluation" test_closed_loop_evaluation;
        ] );
    ]

(* depnn: command-line front end.

   Subcommands mirror the methodology pipeline so each pillar can be run
   (and its artefact inspected) in isolation:

     depnn generate   --samples 2000 --risky 0.25 --out data.log
     depnn data-audit --samples 2000 --risky 0.25
     depnn train      --width 20 --epochs 20 --out predictor.net
     depnn verify     predictor.net --threshold 1.5 --time-limit 60
     depnn verify     predictor.net --certify certs/ --watchdog
     depnn verify     predictor.net --split auto --certify certs/
     depnn audit      predictor.net certs/
     depnn perturb    predictor.net --out perturbed.net
     depnn trace      predictor.net
     depnn simulate predictor.net
     depnn certify  --width 10
     depnn fault campaign --trials 50 --lat-limit 1.5 --smoke
     depnn guard    predictor.net --demo-fault
     depnn serve    predictor.net --socket depnn.sock --cache-dir cache/
     depnn client   verify --socket depnn.sock --threshold 1.5 *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let samples_arg =
  Arg.(value & opt int 1500 & info [ "samples" ] ~docv:"N" ~doc:"Scenes to record.")

let risky_arg =
  Arg.(
    value
    & opt float 0.25
    & info [ "risky" ] ~docv:"P"
        ~doc:"Blind-spot failure rate of the recording expert.")

let width_arg =
  Arg.(
    value & opt int 10
    & info [ "width" ] ~docv:"N" ~doc:"Hidden width of the I4xN architecture.")

let epochs_arg =
  Arg.(value & opt int 20 & info [ "epochs" ] ~docv:"N" ~doc:"Training epochs.")

let cores_arg =
  Arg.(
    value & opt int 1
    & info [ "cores" ] ~docv:"N"
        ~doc:
          "Worker domains for the MILP verifier (bound tightening and \
           branch & bound); 1 = sequential.")

let portfolio_conv =
  let parse s =
    match Milp.Parallel.portfolio_of_string s with
    | Some split -> Ok split
    | None ->
        Error
          (`Msg
             "expected D:P (divers:provers), two non-negative integers \
              with at least one worker in total")
  in
  let print ppf (d, p) = Format.fprintf ppf "%d:%d" d p in
  Arg.conv (parse, print)

let portfolio_arg =
  Arg.(
    value
    & opt (some portfolio_conv) None
    & info [ "portfolio" ] ~docv:"D:P"
        ~env:(Cmd.Env.info "DEPNN_PORTFOLIO")
        ~doc:
          "Diver:prover split for the branch & bound portfolio inside \
           each MILP query ($(b,D) depth-first diving domains hunting \
           incumbents, $(b,P) best-first proving domains driving the \
           bound). Overrides the split derived from $(b,--cores) and \
           disables the per-component query fan-out.")

(* A plain [Arg.int] would accept 0 or negative sizes and only blow up
   deep inside the replay; reject them at the usage level like the other
   suffixed options ($(b,--portfolio), $(b,--bound-mode)). *)
let batch_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Ok n
    | Some _ | None ->
        Error (`Msg "expected a positive integer (columns per batched forward)")
  in
  Arg.conv (parse, Format.pp_print_int)

let batch_arg =
  Arg.(
    value
    & opt batch_conv Guard.default_batch
    & info [ "batch" ] ~docv:"N"
        ~env:(Cmd.Env.info "DEPNN_BATCH")
        ~doc:
          "Scenes per cache-blocked batched forward pass in replay loops \
           (guard sanity check, fault campaign). Results are identical \
           for every batch size; only throughput changes.")

let components = 3

(* {1 LP core} *)

let lp_core_conv =
  let parse s =
    match Lp.Simplex.core_of_string s with
    | Some c -> Ok c
    | None -> Error (`Msg "expected 'sparse' or 'dense'")
  in
  let print ppf c = Format.pp_print_string ppf (Lp.Simplex.core_to_string c) in
  Arg.conv (parse, print)

let lp_core_arg =
  Arg.(
    value
    & opt (some lp_core_conv) None
    & info [ "lp-core" ] ~docv:"CORE"
        ~env:(Cmd.Env.info "DEPNN_LP_CORE")
        ~doc:
          "LP engine behind every relaxation solve: $(b,sparse) (revised \
           simplex on a factored basis — the default) or $(b,dense) \
           (Gauss-Jordan tableau, the reference oracle). The sparse core \
           falls back to dense on any numerical doubt, so results are \
           identical; only wall-clock differs.")

(* Make the choice global before any solve runs, so OBBT probes, node
   re-solves and envelope proofs all use the same engine. *)
let apply_lp_core = Option.iter Lp.Simplex.set_default_core

(* {1 bound modes} *)

let bound_mode_name = function
  | Encoding.Encoder.Interval_bounds -> "interval"
  | Encoding.Encoder.Symbolic_bounds -> "symbolic"
  | Encoding.Encoder.Coarse r -> Printf.sprintf "coarse:%g" r

let bound_mode_conv =
  let parse s =
    let s = String.lowercase_ascii (String.trim s) in
    match s with
    | "interval" -> Ok Encoding.Encoder.Interval_bounds
    | "symbolic" -> Ok Encoding.Encoder.Symbolic_bounds
    | _ when String.length s > 7 && String.sub s 0 7 = "coarse:" -> (
        let radius = String.sub s 7 (String.length s - 7) in
        match float_of_string_opt radius with
        | Some r when r > 0.0 && Float.is_finite r ->
            Ok (Encoding.Encoder.Coarse r)
        | Some _ | None ->
            Error (`Msg "coarse radius must be a positive finite number"))
    | _ -> Error (`Msg "expected 'interval', 'symbolic' or 'coarse:R'")
  in
  let print ppf m = Format.pp_print_string ppf (bound_mode_name m) in
  Arg.conv (parse, print)

let bound_mode_arg =
  Arg.(
    value
    & opt bound_mode_conv Encoding.Encoder.Interval_bounds
    & info [ "bound-mode" ] ~docv:"MODE"
        ~doc:
          "Bound analysis behind the MILP encoding: $(b,interval) (box \
           propagation), $(b,symbolic) (DeepPoly-style symbolic \
           propagation — tighter big-M constants, fewer binaries, and an \
           incomplete pre-verifier that can discharge the property with \
           zero search nodes), or $(b,coarse:R) (single global radius R, \
           the loose-big-M ablation).")

let record ~seed ~samples ~risky =
  let rng = Linalg.Rng.create seed in
  Highway.Recorder.record ~rng ~style:(Highway.Policy.Risky risky)
    ~n_samples:samples ()

let clean_data ~seed ~samples ~risky =
  let dataset = Dataset.of_samples (record ~seed ~samples ~risky) in
  Sanitizer.sanitize dataset

(* {1 generate} *)

let generate seed samples risky out =
  let recorded = record ~seed ~samples ~risky in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter
        (fun s ->
          Array.iter (Printf.fprintf oc "%.17g ") s.Highway.Recorder.features;
          Printf.fprintf oc "| %.17g %.17g\n" s.Highway.Recorder.lat_velocity
            s.Highway.Recorder.lon_accel)
        recorded);
  Printf.printf "wrote %d samples to %s\n" (Array.length recorded) out

let generate_cmd =
  let out =
    Arg.(value & opt string "driving.log"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Record driving scenes with the expert policy.")
    Term.(const generate $ seed_arg $ samples_arg $ risky_arg $ out)

(* {1 data-audit} *)

let data_audit seed samples risky =
  let _, report = clean_data ~seed ~samples ~risky in
  print_string (Sanitizer.render_report report)

let data_audit_cmd =
  Cmd.v
    (Cmd.info "data-audit"
       ~doc:"Run the pillar-C data sanitizer and print the audit.")
    Term.(const data_audit $ seed_arg $ samples_arg $ risky_arg)

(* {1 train} *)

let train seed samples risky width epochs out =
  let clean, report = clean_data ~seed ~samples ~risky in
  Printf.printf "training on %d sanitized samples (%d rejected)\n"
    report.Sanitizer.accepted
    (report.Sanitizer.total - report.Sanitizer.accepted);
  let rng = Linalg.Rng.create (seed + 1) in
  let net =
    Nn.Network.i4xn ~rng ~output_dim:(Nn.Gmm.output_dim ~components) width
  in
  let config =
    {
      (Train.Trainer.default ~loss:(Train.Loss.Mdn { components }) ()) with
      Train.Trainer.epochs;
      seed;
    }
  in
  let history = Train.Trainer.fit config net (Dataset.pairs clean) () in
  let losses = history.Train.Trainer.train_loss in
  Printf.printf "final NLL: %.4f\n" losses.(Array.length losses - 1);
  Nn.Io.save out net;
  Printf.printf "saved %s to %s\n" (Nn.Network.describe net) out

let train_cmd =
  let out =
    Arg.(value & opt string "predictor.net"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Where to save the network.")
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train an I4xN motion predictor on sanitized data.")
    Term.(const train $ seed_arg $ samples_arg $ risky_arg $ width_arg
          $ epochs_arg $ out)

(* {1 perturb} *)

(* One seeded relative nudge to one hidden weight: the minimal model
   update. CI uses it to demonstrate that re-verifying a partitioned
   question against the perturbed network answers most leaves from the
   proof cache — disproving witnesses replay through the new weights
   with one forward pass each, and only the leaves the evidence no
   longer settles are re-solved. *)
let perturb net_path seed scale out =
  let net = Nn.Network.copy (Nn.Io.load net_path) in
  let rng = Linalg.Rng.create seed in
  let li = Linalg.Rng.int rng (Nn.Network.num_layers net) in
  let w = (Nn.Network.layer net li).Nn.Layer.weights in
  let r = Linalg.Rng.int rng (Linalg.Mat.rows w) in
  let c = Linalg.Rng.int rng (Linalg.Mat.cols w) in
  let old = Linalg.Mat.get w r c in
  (* Relative when the weight is non-zero, absolute otherwise — a dead
     weight must still move for the perturbation to mean anything. *)
  let nudged =
    if old = 0.0 then scale else old *. (1.0 +. scale)
  in
  Linalg.Mat.set w r c nudged;
  Printf.printf "perturbed layer %d weight (%d,%d): %.17g -> %.17g\n" li r c
    old nudged;
  Nn.Io.save out net;
  Printf.printf "saved %s to %s (hash %s)\n"
    (Nn.Network.describe net) out (Nn.Io.content_hash net)

let perturb_cmd =
  let net =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"NETWORK" ~doc:"Trained network file to perturb.")
  in
  let scale =
    Arg.(
      value & opt float 1e-3
      & info [ "scale" ] ~docv:"R"
          ~doc:"Relative size of the nudge (absolute for a zero weight).")
  in
  let out =
    Arg.(
      value & opt string "perturbed.net"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Where to save the perturbed network.")
  in
  Cmd.v
    (Cmd.info "perturb"
       ~doc:
         "Apply one seeded relative nudge to one weight and save the \
          result under a new content hash — the smallest possible model \
          update, for exercising cached re-verification.")
    Term.(const perturb $ net $ seed_arg $ scale $ out)

(* {1 verify} *)

let net_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"NETWORK" ~doc:"Trained network file (depnn-network v1).")

let verify net_path threshold time_limit slack cores portfolio bound_mode
    lp_core certify_dir resume watchdog split =
  apply_lp_core lp_core;
  let net = Nn.Io.load net_path in
  Printf.printf "verifying %s (%s, %s bounds, %s lp core)\n"
    (Nn.Network.describe net)
    (match portfolio with
     | Some (d, p) -> Printf.sprintf "portfolio %d diver:%d prover" d p
     | None -> Printf.sprintf "%d core%s" cores (if cores = 1 then "" else "s"))
    (bound_mode_name bound_mode)
    (Lp.Simplex.core_to_string (Lp.Simplex.default_core ()));
  let box = Verify.Scenario.vehicle_on_left ~slack () in
  (* Pre-OBBT stability under both analyses, so the binary-count
     reduction bought by the symbolic mode is visible at a glance. *)
  let ia, ii, iu =
    Encoding.Bounds.stability_counts net (Encoding.Bounds.propagate net box)
  in
  let sa, si, su =
    let s = Absint.Symbolic.propagate net box in
    Encoding.Bounds.stability_counts net
      { Encoding.Bounds.pre = s.Absint.Symbolic.pre;
        post = s.Absint.Symbolic.post }
  in
  Printf.printf
    "bounds (active/inactive/unstable): interval %d/%d/%d, symbolic \
     %d/%d/%d\n"
    ia ii iu sa si su;
  (* A partitioned run is a decision query: the whole budget goes to
     settling leaves against the threshold, not to the exact maximum. *)
  (match split with
   | Some _ ->
       print_endline
         "partitioned decision query: skipping the exact maximisation"
   | None ->
       let r =
         Verify.Driver.max_lateral_velocity ~time_limit ~cores ?portfolio
           ~components ~bound_mode net box
       in
       (match (r.Verify.Driver.value, r.Verify.Driver.optimal) with
        | Some v, true ->
            Printf.printf
              "max lateral velocity with a vehicle on the left: %.6f m/s \
               (exact)\n"
              v
        | Some v, false ->
            Printf.printf
              "best found %.6f m/s, proven bound %.6f (time limit hit)\n" v
              r.Verify.Driver.upper_bound
        | None, _ -> print_endline "n.a. (unable to find maximum)");
       let st = r.Verify.Driver.encoder_stats in
       Printf.printf
         "encoding (%s, post-obbt): %d stable active, %d stable inactive, %d \
          unstable; %d nodes, %.1fs\n"
         (bound_mode_name bound_mode) st.Encoding.Encoder.stable_active
         st.Encoding.Encoder.stable_inactive st.Encoding.Encoder.unstable
         r.Verify.Driver.nodes r.Verify.Driver.elapsed;
       Printf.printf "lp: %d rows x %d cols, %d nnz (density %.4f)\n"
         st.Encoding.Encoder.rows st.Encoding.Encoder.cols
         st.Encoding.Encoder.nnz st.Encoding.Encoder.density;
       let fb = Lp.Simplex.sparse_fallbacks () in
       if fb > 0 then
         Printf.printf "lp: %d sparse solve%s fell back to the dense oracle\n"
           fb
           (if fb = 1 then "" else "s");
       Printf.printf "per-component solve time:%s\n"
         (String.concat ""
            (Array.to_list
               (Array.map (Printf.sprintf " %.2fs")
                  r.Verify.Driver.component_elapsed)));
       let ob = r.Verify.Driver.obbt in
       if ob.Encoding.Encoder.probes > 0 then
         Printf.printf
           "obbt: %d probes (%d refined, %d failed, %d skipped by budget)\n"
           ob.Encoding.Encoder.probes ob.Encoding.Encoder.refined
           ob.Encoding.Encoder.failed ob.Encoding.Encoder.skipped_budget);
  let proof =
    Verify.Driver.prove_lateral_velocity_le ~time_limit ~cores ?portfolio
      ~components ~bound_mode ~threshold ?certify_dir ~resume ~watchdog ?split
      net box
  in
  (match proof.Verify.Driver.partition with
   | Some stats ->
       (* One parsable line: CI greps the leaf accounting. *)
       Printf.printf "partition: %s\n" (Verify.Partition.render_stats stats);
       (match certify_dir with
        | Some dir ->
            Printf.printf
              "certificates: %d across %d leaf directories in %s\n"
              proof.Verify.Driver.certified stats.Verify.Partition.leaves dir
        | None -> ())
   | None ->
       if proof.Verify.Driver.presolved > 0 then
         Printf.printf
           "pre-pass discharged %d/%d components without search (%d nodes \
            total)\n"
           proof.Verify.Driver.presolved components
           proof.Verify.Driver.proof_nodes;
       (match certify_dir with
        | Some dir ->
            Printf.printf
              "certificates: %d/%d components certified in %s (%d resumed)\n"
              proof.Verify.Driver.certified components dir
              proof.Verify.Driver.resumed
        | None -> ()));
  if proof.Verify.Driver.degraded > 0 then
    Printf.printf "watchdog: %d fallback transition%s taken\n"
      proof.Verify.Driver.degraded
      (if proof.Verify.Driver.degraded = 1 then "" else "s");
  (* Scriptable contract: 0 = Proved, 1 = Disproved, 2 = Unknown. *)
  match proof.Verify.Driver.proof with
  | Verify.Driver.Proved ->
      Printf.printf "PROVED: lateral velocity <= %.2f m/s on the scenario\n"
        threshold
  | Verify.Driver.Disproved w ->
      Printf.printf "UNSAFE: counterexample reaches %.3f m/s\n"
        w.Verify.Driver.achieved;
      exit 1
  | Verify.Driver.Unknown { best_bound } ->
      Printf.printf "UNKNOWN: bound %.3f after the time limit\n" best_bound;
      exit 2

let certify_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "certify" ] ~docv:"DIR"
        ~doc:
          "Write an auditable proof certificate per component plus a \
           crash-safe journal into $(docv); replay them independently \
           with $(b,depnn audit). Forces deterministic re-encodable \
           solves (no OBBT, sequential search).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Skip components already settled in the $(b,--certify) \
           directory's journal for the same network and property \
           (survives kills: a torn journal line is ignored and the \
           component re-proved).")

let watchdog_arg =
  Arg.(
    value & flag
    & info [ "watchdog" ]
        ~doc:
          "Run each component under its share of the deadline and \
           degrade along a fallback ladder (symbolic-only, sparse \
           MILP, dense MILP, honest unknown) instead of aborting the \
           campaign on a timeout or numerical failure.")

let split_conv =
  let parse s =
    match Verify.Partition.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg "expected 'auto' or a split depth in 0..16")
  in
  let print ppf = function
    | Verify.Partition.Auto -> Format.pp_print_string ppf "auto"
    | Verify.Partition.Depth d -> Format.pp_print_int ppf d
  in
  Arg.conv (parse, print)

let split_arg =
  Arg.(
    value
    & opt (some split_conv) None
    & info [ "split" ] ~docv:"POLICY"
        ~env:(Cmd.Env.info "DEPNN_SPLIT")
        ~doc:
          "Partition-and-conquer: bisect the scenario box along its most \
           influential inputs and settle each leaf independently — \
           proof-store lookup first, then the zero-node symbolic \
           pre-pass, then a MILP on the small box. $(b,auto) splits \
           adaptively while the symbolic bound improves; an integer \
           forces that uniform depth. With $(b,--certify) every leaf \
           gets its own certificate directory plus a shard manifest \
           that $(b,depnn audit) replays, and re-running (even after \
           retraining) answers unchanged leaves from the cache.")

let verify_cmd =
  let threshold =
    Arg.(value & opt float 1.5
         & info [ "threshold" ] ~docv:"V" ~doc:"Lateral velocity limit (m/s).")
  in
  let time_limit =
    Arg.(value & opt float 60.0
         & info [ "time-limit" ] ~docv:"S" ~doc:"Wall-clock budget in seconds.")
  in
  let slack =
    Arg.(value & opt float 0.03
         & info [ "slack" ] ~docv:"R" ~doc:"Scenario box slack (normalised).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Formally verify the vehicle-on-left safety property (pillar B).")
    Term.(const verify $ net_arg $ threshold $ time_limit $ slack $ cores_arg
          $ portfolio_arg $ bound_mode_arg $ lp_core_arg $ certify_dir_arg
          $ resume_arg $ watchdog_arg $ split_arg)

(* {1 audit} *)

let audit_plain ~net ~dir =
  let report = Certify.Audit.run ~net ~dir in
  print_string (Certify.Audit.render report);
  match report.Certify.Audit.verdict with
  | `Proved -> ()
  | `Disproved -> exit 1
  | `Unknown -> exit 2

let audit net_path dir =
  let net = Nn.Io.load net_path in
  Printf.printf "auditing %s against %s\n" (Nn.Network.describe net) dir;
  match Certify.Audit.shard_manifests ~dir with
  | [] -> audit_plain ~net ~dir
  | shards ->
      (* A partitioned campaign: audit every shard manifest that speaks
         about this network (a store root may also hold shards for other
         networks — those are skipped, not failed). Exit code contract
         as for plain audits, any confirmed disproof dominating. *)
      let audited = ref 0 and skipped = ref 0 in
      let disproved = ref false and all_proved = ref true in
      List.iter
        (fun name ->
          match Certify.Audit.run_shard ~net ~dir ~name with
          | Error "manifest is for a different network" ->
              incr skipped;
              Printf.printf "skipped %s (different network)\n" name
          | Error reason ->
              all_proved := false;
              incr audited;
              Printf.printf "rejected %s: %s\n" name reason
          | Ok r ->
              incr audited;
              print_string (Certify.Audit.render_shard r);
              if r.Certify.Audit.shard_verdict = `Disproved then
                disproved := true
              else if not (r.Certify.Audit.shard_ok && r.shard_verdict = `Proved)
              then all_proved := false)
        shards;
      if !audited = 0 then begin
        Printf.printf
          "no shard manifest for this network (%d skipped); auditing as a \
           plain campaign\n"
          !skipped;
        audit_plain ~net ~dir
      end
      else if !disproved then exit 1
      else if not !all_proved then exit 2

let audit_cmd =
  let dir =
    Arg.(
      required
      & pos 1 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:"Certification directory written by verify --certify.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Independently re-verify a certification directory: replay every \
          certificate with outward-rounded arithmetic, trusting nothing \
          the solver concluded. A directory holding shard manifests \
          (written by $(b,verify --split --certify)) is audited as a \
          partitioned campaign: the tiling geometry is re-established \
          from each manifest's checksummed split tree, then every leaf \
          directory is replayed. Exit 0 = Proved, 1 = Disproved, 2 = \
          Unknown or any rejected certificate.")
    Term.(const audit $ net_arg $ dir)

(* {1 trace} *)

let trace net_path seed samples =
  let net = Nn.Io.load net_path in
  let recorded = record ~seed ~samples ~risky:0.0 in
  let probes = Array.map (fun s -> s.Highway.Recorder.features) recorded in
  let t =
    Traceability.Analysis.analyze ~feature_names:Highway.Features.names net
      probes
  in
  print_string (Traceability.Analysis.render ~max_neurons:40 t)

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Neuron-to-feature traceability table (pillar A).")
    Term.(const trace $ net_arg $ seed_arg $ samples_arg)

(* {1 simulate} *)

let simulate net_path seed steps =
  let net = Nn.Io.load net_path in
  let rng = Linalg.Rng.create seed in
  let sim =
    Highway.Simulator.spawn ~rng ~road:Highway.Recorder.default_road
      ~vehicles_per_lane:14 ()
  in
  let idm = Highway.Idm.default and mobil = Highway.Mobil.default in
  let controller scene = Highway.Policy.act ~idm ~mobil ~rng scene in
  Highway.Simulator.run sim ~controller ~dt:0.2 ~steps ();
  let scene = Highway.Simulator.scene sim in
  let mixture =
    Nn.Gmm.decode ~components
      (Nn.Network.forward net (Highway.Features.encode scene))
  in
  print_endline
    (Highway.Render.side_by_side
       (Highway.Render.scene scene)
       (Highway.Render.action_distribution mixture))

let simulate_cmd =
  let steps =
    Arg.(value & opt int 150 & info [ "steps" ] ~docv:"N" ~doc:"Simulation steps.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Render a simulation snapshot (Fig. 1 analogue).")
    Term.(const simulate $ net_arg $ seed_arg $ steps)

(* {1 fault campaign / guard} *)

(* Either load a trained network or synthesize a seeded random I4xN one
   (campaign statistics don't need a trained predictor, just a
   realistic architecture). *)
let load_or_synthesize net_path ~seed ~width =
  match net_path with
  | Some path -> Nn.Io.load path
  | None ->
      Nn.Network.i4xn
        ~rng:(Linalg.Rng.create (seed + 17))
        ~output_dim:(Nn.Gmm.output_dim ~components)
        width

(* Clean scenes from the nominal expert, as feature vectors. *)
let record_scenes ~seed ~n =
  let recorded = record ~seed ~samples:n ~risky:0.0 in
  Array.map (fun s -> s.Highway.Recorder.features) recorded

(* The runtime envelope: either the caller's explicit limit, or the
   MILP-proven bound over the vehicle-on-left scenario box. *)
let derive_envelope ~lat_limit ~time_limit ~cores ~portfolio net =
  match lat_limit with
  | Some l -> Guard.envelope ~components ~lat_limit:l ()
  | None ->
      Printf.printf "verifying envelope (%.0fs budget)...\n%!" time_limit;
      let box = Verify.Scenario.vehicle_on_left () in
      let r =
        Verify.Driver.max_lateral_velocity ~time_limit ~cores ?portfolio
          ~components net box
      in
      let e = Guard.envelope_of_verification ~components r in
      Printf.printf "proven lat limit: %.3f m/s\n%!" e.Guard.lat_limit;
      e

let fault_campaign net_path seed width trials scenes lat_limit time_limit
    cores portfolio batch reverify smoke =
  let net = load_or_synthesize net_path ~seed ~width in
  let envelope = derive_envelope ~lat_limit ~time_limit ~cores ~portfolio net in
  let scenes = record_scenes ~seed ~n:scenes in
  let rng = Linalg.Rng.create seed in
  (* In smoke mode, pin a known overflow-producing bit flip so the NaN
     detection assertion is exercised, not vacuously true. *)
  let faults =
    if not smoke then []
    else begin
      match Fault.Campaign.find_nan_fault ~components ~scenes net with
      | Some f ->
          Printf.printf "pinned NaN fault: %s\n" (Fault.Model.describe f);
          [ f ]
      | None ->
          print_endline "warning: no single-bit NaN fault found to pin";
          []
    end
  in
  let report =
    Fault.Campaign.run ~rng ~envelope ~reverify ~cores ~batch ~faults ~scenes
      ~trials net
  in
  print_string (Fault.Campaign.render report);
  if smoke then begin
    let nan_exercised =
      faults = [] || report.Fault.Campaign.nan_trials > 0
    in
    let ok =
      nan_exercised
      && report.Fault.Campaign.nan_detected = report.Fault.Campaign.nan_trials
      && report.Fault.Campaign.escaped_exceptions = 0
      && report.Fault.Campaign.violations_detected
         = report.Fault.Campaign.violation_trials
    in
    Printf.printf "smoke: %s\n" (if ok then "PASS" else "FAIL");
    if not ok then exit 1
  end

let opt_net_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"NETWORK"
        ~doc:
          "Trained network file; omitted, a seeded random I4xN predictor \
           is synthesized.")

let trials_arg =
  Arg.(value & opt int 50
       & info [ "trials" ] ~docv:"N" ~doc:"Faults to inject.")

let scenes_arg =
  Arg.(value & opt int 100
       & info [ "scenes" ] ~docv:"N" ~doc:"Scenes replayed per fault.")

let lat_limit_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "lat-limit" ] ~docv:"V"
        ~doc:
          "Envelope limit on the lateral velocity (m/s). When omitted the \
           limit is proven by MILP over the vehicle-on-left scenario \
           (slower).")

let time_limit_arg =
  Arg.(value & opt float 30.0
       & info [ "time-limit" ] ~docv:"S"
           ~doc:"Verification budget when proving the envelope (seconds).")

let fault_campaign_cmd =
  let reverify =
    Arg.(value & opt int 0
         & info [ "reverify" ] ~docv:"N"
             ~doc:"Re-verify up to N faulted networks by MILP.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "CI mode: exit 1 unless every NaN/Inf fault was detected and \
             no exception escaped the guard.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Inject seeded faults and measure how the runtime guard degrades.")
    Term.(const fault_campaign $ opt_net_arg $ seed_arg $ width_arg
          $ trials_arg $ scenes_arg $ lat_limit_arg $ time_limit_arg
          $ cores_arg $ portfolio_arg $ batch_arg $ reverify $ smoke)

let fault_cmd =
  Cmd.group
    (Cmd.info "fault" ~doc:"Fault-injection experiments on the predictor.")
    [ fault_campaign_cmd ]

let guard_run net_path seed width scenes lat_limit time_limit cores portfolio
    batch demo_fault =
  let net = load_or_synthesize net_path ~seed ~width in
  let envelope = derive_envelope ~lat_limit ~time_limit ~cores ~portfolio net in
  let scenes = record_scenes ~seed ~n:scenes in
  let subject, channel =
    if not demo_fault then (net, None)
    else begin
      let rng = Linalg.Rng.create (seed + 3) in
      match Fault.Model.sample ~rng net with
      | Fault.Model.Network_fault nf as f ->
          Printf.printf "injecting: %s\n" (Fault.Model.describe f);
          (Fault.Model.inject nf net, None)
      | Fault.Model.Input_fault inf as f ->
          Printf.printf "injecting: %s\n" (Fault.Model.describe f);
          (net, Some (Fault.Model.input_channel inf))
    end
  in
  let guard = Guard.make ~envelope subject in
  let inputs =
    match channel with
    | Some ch -> Array.map (Fault.Model.corrupt ch) scenes
    | None -> scenes
  in
  ignore (Guard.predict_batch ~batch guard inputs);
  print_string (Guard.render_diagnostics (Guard.diagnostics guard))

let guard_cmd =
  let demo_fault =
    Arg.(
      value & flag
      & info [ "demo-fault" ]
          ~doc:"Inject one seeded fault first, to demonstrate degradation.")
  in
  Cmd.v
    (Cmd.info "guard"
       ~doc:
         "Replay scenes through the runtime safety monitor and print its \
          diagnostics.")
    Term.(const guard_run $ opt_net_arg $ seed_arg $ width_arg $ scenes_arg
          $ lat_limit_arg $ time_limit_arg $ cores_arg $ portfolio_arg
          $ batch_arg $ demo_fault)

(* {1 serve / client} *)

let address_conv =
  let parse s =
    match Serve.Protocol.address_of_string s with
    | Ok a -> Ok a
    | Error e -> Error (`Msg e)
  in
  let print ppf a =
    Format.pp_print_string ppf (Serve.Protocol.address_to_string a)
  in
  Arg.conv (parse, print)

let socket_arg =
  Arg.(
    value
    & opt address_conv (Serve.Protocol.Unix_socket "depnn.sock")
    & info [ "socket" ] ~docv:"ADDR"
        ~env:(Cmd.Env.info "DEPNN_SOCKET")
        ~doc:
          "Server address: $(b,unix:)$(i,PATH), $(b,tcp:)$(i,HOST:PORT), \
           or a bare path (unix socket).")

let serve net_path socket workers cache_dir queue max_time stats_interval
    lp_core split =
  apply_lp_core lp_core;
  let net = Nn.Io.load net_path in
  Printf.printf "serving %s (hash %s) on %s\n%!"
    (Nn.Network.describe net) (Nn.Io.content_hash net)
    (Serve.Protocol.address_to_string socket);
  let config =
    {
      (Serve.Server.default_config ~address:socket ~cache_dir ()) with
      Serve.Server.workers;
      queue_capacity = queue;
      max_time_limit = max_time;
      stats_interval;
      handle_signals = true;
      split;
    }
  in
  Serve.Server.run config net

let serve_cmd =
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains solving cache misses.")
  in
  let cache_dir =
    Arg.(value & opt string "proof-cache"
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:
               "Content-addressed proof store root (one auditable \
                certification directory per property hash); recovered on \
                restart.")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Queued cache misses before new ones are refused.")
  in
  let max_time =
    Arg.(value & opt float 60.0
         & info [ "max-time-limit" ] ~docv:"S"
             ~doc:"Cap on any client's requested solve budget (seconds).")
  in
  let stats_interval =
    Arg.(value & opt float 30.0
         & info [ "stats-interval" ] ~docv:"S"
             ~doc:"Seconds between stats log lines on stderr; 0 disables.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent certification server: verdicts answered from \
          the content-addressed proof cache when possible (exact key or a \
          subsuming verified box), solved and certified otherwise. \
          SIGINT/SIGTERM drain the queue and shut down cleanly.")
    Term.(const serve $ net_arg $ socket_arg $ workers $ cache_dir $ queue
          $ max_time $ stats_interval $ lp_core_arg $ split_arg)

(* The client builds the same deterministic scenario box as [verify], so
   two processes asking the same question serialise bit-identical
   payloads — and therefore hit the same cache key on the server. *)
let scenario_property ~threshold ~slack ~bound_mode =
  let box = Verify.Scenario.vehicle_on_left ~slack () in
  {
    Certify.Certificate.threshold;
    components;
    bound_mode = Certify.Checker.mode_string bound_mode;
    box = Array.map (fun iv -> (iv.Interval.lo, iv.Interval.hi)) box;
  }

let client op socket net_path threshold slack bound_mode time_limit timeout =
  let net_hash =
    Option.map (fun p -> Nn.Io.content_hash (Nn.Io.load p)) net_path
  in
  let request =
    match op with
    | `Status -> Serve.Protocol.Status
    | `Shutdown -> Serve.Protocol.Shutdown
    | `Predict ->
        Serve.Protocol.Predict
          (Interval.Box.center (Verify.Scenario.vehicle_on_left ~slack ()))
    | (`Verify | `Certify) as op ->
        Serve.Protocol.Verify
          {
            Serve.Protocol.property =
              scenario_property ~threshold ~slack ~bound_mode;
            net_hash;
            time_limit;
            exact_only = op = `Certify;
          }
  in
  match Serve.Client.call ~timeout socket request with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 3
  | Ok (Serve.Protocol.Refused reason) ->
      Printf.printf "error: %s\n" reason;
      exit 3
  | Ok Serve.Protocol.Shutting_down -> print_endline "server shutting down"
  | Ok (Serve.Protocol.Outputs out) ->
      Array.iter (Printf.printf "%.17g ") out;
      print_newline ()
  | Ok (Serve.Protocol.Stats s) ->
      Printf.printf
        "uptime: %.1fs\nworkers: %d (%d failed)\nqueue: %d/%d\nqueries: \
         %d\ncache: %d exact, %d subsumed\nsolved: %d\nrejected: \
         %d\nstore: %d entries\n"
        s.Serve.Protocol.uptime_s s.Serve.Protocol.workers
        s.Serve.Protocol.failed_workers s.Serve.Protocol.queue_depth
        s.Serve.Protocol.queue_capacity s.Serve.Protocol.queries
        s.Serve.Protocol.served_exact s.Serve.Protocol.served_subsumed
        s.Serve.Protocol.solved s.Serve.Protocol.rejected
        s.Serve.Protocol.store_entries
  | Ok (Serve.Protocol.Answer a) -> (
      (* Line-per-fact output: scripts grep [cache:] and [dir:]. *)
      Printf.printf "cache: %s\n"
        (Serve.Protocol.cache_string a.Serve.Protocol.cache);
      Printf.printf "prop: %s\n" a.Serve.Protocol.prop_hash;
      Printf.printf "certified: %d\n" a.Serve.Protocol.certified;
      Printf.printf "dir: %s\n" a.Serve.Protocol.cert_dir;
      Printf.printf "solve: %.3fs\n" a.Serve.Protocol.solve_s;
      match a.Serve.Protocol.verdict with
      | Serve.Protocol.V_proved ->
          Printf.printf "PROVED: lateral velocity <= %.2f m/s\n" threshold
      | Serve.Protocol.V_disproved { achieved; _ } ->
          Printf.printf "UNSAFE: counterexample reaches %.3f m/s\n" achieved;
          exit 1
      | Serve.Protocol.V_unknown { best_bound } ->
          Printf.printf "UNKNOWN: bound %.3f after the time limit\n"
            best_bound;
          exit 2)

let client_cmd =
  let op =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("verify", `Verify); ("certify", `Certify);
                  ("predict", `Predict); ("status", `Status);
                  ("shutdown", `Shutdown);
                ]))
          None
      & info [] ~docv:"OP"
          ~doc:
            "$(b,verify) (cache may answer by subsumption), $(b,certify) \
             (exact cache key only), $(b,predict), $(b,status), \
             $(b,shutdown).")
  in
  let net =
    Arg.(
      value
      & opt (some file) None
      & info [ "net" ] ~docv:"FILE"
          ~doc:
            "Pin the query to this network file's content hash; the \
             server refuses a mismatch.")
  in
  let threshold =
    Arg.(value & opt float 1.5
         & info [ "threshold" ] ~docv:"V" ~doc:"Lateral velocity limit (m/s).")
  in
  let slack =
    Arg.(value & opt float 0.03
         & info [ "slack" ] ~docv:"R" ~doc:"Scenario box slack (normalised).")
  in
  let time_limit =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-limit" ] ~docv:"S"
          ~doc:"Requested solve budget; the server clamps it to its cap.")
  in
  let timeout =
    Arg.(value & opt float 120.0
         & info [ "timeout" ] ~docv:"S" ~doc:"Client-side socket timeout.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Query a running $(b,depnn serve) daemon (one request per call).")
    Term.(const client $ op $ socket_arg $ net $ threshold $ slack
          $ bound_mode_arg $ time_limit $ timeout)

(* {1 certify} *)

let certify seed width samples epochs cores portfolio batch =
  let config =
    {
      (Pipeline.default_config ~width ~seed ()) with
      Pipeline.n_samples = samples;
      epochs;
      verify_cores = cores;
      verify_portfolio = portfolio;
      batch;
    }
  in
  let artifacts = Pipeline.run ~progress:print_endline config in
  print_newline ();
  print_endline (Pipeline.render_report artifacts);
  let verdict = Pipeline.certify artifacts in
  match verdict.Pipeline.property_holds with
  | Some true -> print_endline "certification: PASS"
  | Some false ->
      print_endline "certification: FAIL (safety property violated)";
      exit 1
  | None ->
      print_endline "certification: INCONCLUSIVE (verification timed out)";
      exit 2

let certify_cmd =
  Cmd.v
    (Cmd.info "certify" ~doc:"Run the full three-pillar certification pipeline.")
    Term.(const certify $ seed_arg $ width_arg $ samples_arg $ epochs_arg
          $ cores_arg $ portfolio_arg $ batch_arg)

let () =
  let doc = "dependable neural networks for safety-critical applications" in
  let info = Cmd.info "depnn" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; data_audit_cmd; audit_cmd; train_cmd; perturb_cmd;
            verify_cmd; trace_cmd; simulate_cmd; certify_cmd; fault_cmd;
            guard_cmd; serve_cmd; client_cmd;
          ]))

#!/bin/sh
# Lightweight style gate for CI (stand-in for `dune build @fmt`: the
# project does not pin ocamlformat, so we enforce the invariants that
# matter for reviewable diffs instead).
#
#   - no tab characters in OCaml sources or dune files
#   - no trailing whitespace
#   - every tracked text file ends with a newline
#
# Exits non-zero listing each offending file:line.

set -u

fail=0

files=$(git ls-files '*.ml' '*.mli' 'dune' '*/dune' 'dune-project' '*.md' '*.sh')

for f in $files; do
  [ -f "$f" ] || continue

  if grep -n "$(printf '\t')" "$f" >/dev/null 2>&1; then
    case "$f" in
      *.md) ;; # markdown allows tabs in code blocks
      *)
        echo "tab character(s):"
        grep -n "$(printf '\t')" "$f" | head -5 | sed "s|^|  $f:|"
        fail=1
        ;;
    esac
  fi

  if grep -n ' $' "$f" >/dev/null 2>&1; then
    echo "trailing whitespace:"
    grep -n ' $' "$f" | head -5 | sed "s|^|  $f:|"
    fail=1
  fi

  if [ -s "$f" ] && [ "$(tail -c 1 "$f" | od -An -c | tr -d ' ')" != '\n' ]; then
    echo "missing final newline: $f"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "style check passed ($(echo "$files" | wc -l | tr -d ' ') files)"
fi

exit "$fail"
